#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fault/failpoint.h"

#include "exec/exec_options.h"
#include "exec/grain.h"
#include "exec/parallel_for.h"
#include "exec/task_group.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace idrepair {
namespace {

TEST(ExecOptionsTest, ResolvesAndValidates) {
  ExecOptions exec;
  EXPECT_GE(exec.ResolvedThreads(), 1);
  EXPECT_TRUE(exec.Validate().ok());
  exec.num_threads = 4;
  EXPECT_EQ(exec.ResolvedThreads(), 4);
  exec.num_threads = -1;
  EXPECT_FALSE(exec.Validate().ok());
  exec.num_threads = 0;
  exec.min_partition_grain = 0;
  EXPECT_FALSE(exec.Validate().ok());
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
  std::atomic<int> counter{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 100; ++i) {
    group.Spawn([&counter] {
      counter.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    });
  }
  EXPECT_TRUE(group.Wait().ok());
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, NestedGroupsDoNotDeadlockOnSingleWorker) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  TaskGroup outer(&pool);
  for (int i = 0; i < 4; ++i) {
    outer.Spawn([&pool, &counter] {
      TaskGroup inner(&pool);
      for (int j = 0; j < 4; ++j) {
        inner.Spawn([&counter] {
          counter.fetch_add(1, std::memory_order_relaxed);
          return Status::OK();
        });
      }
      return inner.Wait();
    });
  }
  EXPECT_TRUE(outer.Wait().ok());
  EXPECT_EQ(counter.load(), 16);
}

TEST(TaskGroupTest, PropagatesFirstError) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  for (int i = 0; i < 8; ++i) {
    group.Spawn([i] {
      if (i == 3) return Status::InvalidArgument("task 3 failed");
      return Status::OK();
    });
  }
  Status status = group.Wait();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "task 3 failed");
  EXPECT_TRUE(group.IsCancelled());
}

TEST(TaskGroupTest, ErrorCancelsUnstartedTasks) {
  // One worker, and the first task fails: by the time the worker (or the
  // helping waiter) reaches later tasks the group is cancelled, so they
  // are skipped without running.
  ThreadPool pool(1);
  std::atomic<int> executed{0};
  TaskGroup group(&pool);
  group.Spawn([] { return Status::Internal("fail fast"); });
  for (int i = 0; i < 200; ++i) {
    group.Spawn([&executed] {
      executed.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    });
  }
  Status status = group.Wait();
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  // The failing task is submitted first; at most the handful of tasks
  // already claimed before the error landed can have run.
  EXPECT_LT(executed.load(), 200);
}

TEST(TaskGroupTest, ManualCancelSkipsTasksAndWaitReturnsOk) {
  ThreadPool pool(1);
  std::atomic<int> executed{0};
  TaskGroup group(&pool);
  group.Cancel();  // cancel before anything is spawned
  for (int i = 0; i < 50; ++i) {
    group.Spawn([&executed] {
      executed.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    });
  }
  EXPECT_TRUE(group.Wait().ok());  // cancellation is not an error
  EXPECT_EQ(executed.load(), 0);
}

TEST(SplitRangeTest, RespectsGrainAndThreadCap) {
  EXPECT_TRUE(SplitRange(0, 4, 16).empty());

  // Tiny input collapses to one shard.
  auto one = SplitRange(10, 8, 64);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], (std::pair<size_t, size_t>{0, 10}));

  // Large input: at most num_threads shards, contiguous and exhaustive.
  auto shards = SplitRange(1000, 4, 64);
  ASSERT_EQ(shards.size(), 4u);
  size_t expect_begin = 0;
  for (const auto& [begin, end] : shards) {
    EXPECT_EQ(begin, expect_begin);
    EXPECT_GE(end - begin, 64u);
    expect_begin = end;
  }
  EXPECT_EQ(expect_begin, 1000u);

  // Grain caps the shard count before the thread cap does.
  EXPECT_EQ(SplitRange(100, 8, 50).size(), 2u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  Status status = ParallelFor(
      &pool, kN, /*num_threads=*/4, /*grain=*/16,
      [&hits](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
        return Status::OK();
      });
  EXPECT_TRUE(status.ok());
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ObsCountsEveryTaskExactlyOnce) {
  obs::MetricsRegistry::Global().Reset();
  obs::SetEnabled(true);
  {
    // Scoped so the pool joins its workers before the counters are read —
    // a worker bumps "executed" only after the task body returns.
    ThreadPool pool(4);
    TaskGroup group(&pool);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i) {
      group.Spawn([&ran] {
        ran.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      });
    }
    ASSERT_TRUE(group.Wait().ok());
    EXPECT_EQ(ran.load(), 100);
  }
  obs::SetEnabled(false);

  uint64_t submitted = 0;
  uint64_t executed = 0;
  uint64_t stolen = 0;
  int64_t depth = -1;
  bool saw_latency = false;
  for (const auto& m : obs::MetricsRegistry::Global().Collect()) {
    if (m.name == "idrepair_exec_tasks_submitted_total") {
      submitted = m.counter_value;
    } else if (m.name == "idrepair_exec_tasks_executed_total") {
      executed = m.counter_value;
    } else if (m.name == "idrepair_exec_tasks_stolen_total") {
      stolen = m.counter_value;
    } else if (m.name == "idrepair_exec_queue_depth") {
      depth = m.gauge_value;
    } else if (m.name == "idrepair_exec_task_seconds") {
      saw_latency = m.total_count == 100;
    }
  }
  EXPECT_EQ(submitted, 100u);
  EXPECT_EQ(executed, submitted);
  EXPECT_LE(stolen, executed);
  EXPECT_EQ(depth, 0);  // everything enqueued was drained
  EXPECT_TRUE(saw_latency);
}

// Regression for the deterministic-first-error contract: the surfaced
// error belongs to the lowest spawn index among the tasks that failed,
// not to whichever failure landed first. Task 0 fails slowly while a
// burst of later tasks fails instantly; at every thread count Wait()
// must still report task 0.
TEST(TaskGroupTest, SurfacesLowestSpawnIndexErrorNotFirstToLand) {
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    TaskGroup group(&pool);
    std::atomic<bool> started{false};
    group.Spawn([&started] {
      started.store(true, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      return Status::Corruption("slow failure at index 0");
    });
    // Don't introduce the fast failures until task 0 is running, so it can
    // never be skipped by their cancellation — its failure always exists.
    while (!started.load(std::memory_order_relaxed)) std::this_thread::yield();
    for (int i = 1; i < 32; ++i) {
      group.Spawn([] { return Status::Internal("fast failure"); });
    }
    Status status = group.Wait();
    EXPECT_EQ(status.code(), StatusCode::kCorruption);
    EXPECT_EQ(status.message(), "slow failure at index 0");
  }
}

// With exactly one fallible task in the group — the common one-bad-shard
// case — the same error surfaces at every thread count, run after run.
TEST(TaskGroupTest, SingleFailureIsDeterministicAcrossThreadCounts) {
  for (int threads : {1, 2, 8}) {
    for (int round = 0; round < 5; ++round) {
      SCOPED_TRACE("threads=" + std::to_string(threads) + " round=" +
                   std::to_string(round));
      ThreadPool pool(threads);
      TaskGroup group(&pool);
      for (int i = 0; i < 64; ++i) {
        group.Spawn([i] {
          if (i == 23) return Status::NotFound("shard 23 is bad");
          return Status::OK();
        });
      }
      Status status = group.Wait();
      EXPECT_EQ(status.code(), StatusCode::kNotFound);
      EXPECT_EQ(status.message(), "shard 23 is bad");
    }
  }
}

// The exec.task_group.run failpoint fires inside task closures and its
// error propagates through Wait() like any task failure; disarming
// restores clean runs.
TEST(TaskGroupTest, InjectedFaultAtRunSitePropagates) {
  fault::FaultSpec spec;
  spec.fire_on_hit = 1;
  spec.code = StatusCode::kResourceExhausted;
  ASSERT_TRUE(fault::FailPointRegistry::Global()
                  .Arm("exec.task_group.run", spec)
                  .ok());
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> executed{0};
  for (int i = 0; i < 16; ++i) {
    group.Spawn([&executed] {
      executed.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    });
  }
  EXPECT_EQ(group.Wait().code(), StatusCode::kResourceExhausted);
  EXPECT_LT(executed.load(), 16) << "the fault should have cancelled tasks";

  fault::FailPointRegistry::Global().DisarmAll();
  TaskGroup clean(&pool);
  for (int i = 0; i < 16; ++i) {
    clean.Spawn([] { return Status::OK(); });
  }
  EXPECT_TRUE(clean.Wait().ok());
}

// Delay perturbation on the pool's dispatch/steal sites reorders timing
// but never drops work or surfaces errors (MaybePerturb swallows them).
TEST(ThreadPoolTest, DispatchPerturbationNeverDropsTasks) {
  fault::FaultSpec delay;
  delay.action = fault::FaultAction::kDelay;
  delay.one_in = 2;
  delay.seed = 3;
  delay.delay_micros = 100;
  ASSERT_TRUE(
      fault::FailPointRegistry::Global().Arm("exec.pool.dispatch", delay).ok());
  ASSERT_TRUE(
      fault::FailPointRegistry::Global().Arm("exec.pool.steal", delay).ok());
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 200; ++i) {
    group.Spawn([&counter] {
      counter.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    });
  }
  EXPECT_TRUE(group.Wait().ok());
  EXPECT_EQ(counter.load(), 200);
  fault::FailPointRegistry::Global().DisarmAll();
}

TEST(ParallelForTest, PropagatesShardError) {
  ThreadPool pool(2);
  Status status = ParallelFor(
      &pool, 1000, /*num_threads=*/4, /*grain=*/1,
      [](size_t shard, size_t, size_t) {
        if (shard == 2) return Status::Corruption("shard 2 broke");
        return Status::OK();
      });
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

// ---- Auto-grain cost model (exec/grain.h) ----

TEST(GrainTest, SerialInputsCollapseToOneShard) {
  // threads <= 1 is the serial reference schedule: one shard spanning the
  // whole range, whatever the calibration.
  EXPECT_EQ(ComputeAutoGrain(1000, 1, 4), 1000u);
  EXPECT_EQ(ComputeAutoGrain(1000, 0, 512), 1000u);
  EXPECT_EQ(ComputeAutoGrain(7, -3, 1), 7u);
  // Empty range: grain 1 (SplitRange returns no shards anyway).
  EXPECT_EQ(ComputeAutoGrain(0, 8, 4), 1u);
}

TEST(GrainTest, SmallCountsFloorAtCalibration) {
  // 10 items on 8 threads targets 32 shards -> raw grain 1, floored at the
  // calibration so tiny shards never pay a dispatch each...
  EXPECT_EQ(ComputeAutoGrain(10, 8, 4), 4u);
  // ...but the floor never exceeds the item count (threads > items).
  EXPECT_EQ(ComputeAutoGrain(3, 8, 512), 3u);
  EXPECT_EQ(ComputeAutoGrain(1, 8, 4), 1u);
}

TEST(GrainTest, HugeCountsTargetShardsPerThread) {
  // 1e6 items, 8 threads -> ceil(1e6 / 32) with the floor irrelevant.
  EXPECT_EQ(ComputeAutoGrain(1000000, 8, 4),
            (1000000u + 8 * kAutoShardsPerThread - 1) /
                (8 * kAutoShardsPerThread));
  // 2 threads -> 8 shards of 125k.
  EXPECT_EQ(ComputeAutoGrain(1000000, 2, 512), 125000u);
}

TEST(GrainTest, ExplicitRequestOverridesTheModel) {
  // Any non-auto request wins unconditionally, even a degenerate one.
  EXPECT_EQ(ResolveGrain(17, 1000000, 8, 512), 17u);
  EXPECT_EQ(ResolveGrain(1, 10, 1, 512), 1u);
  // kGrainAuto defers to the model.
  EXPECT_EQ(ResolveGrain(kGrainAuto, 1000, 1, 4), 1000u);
  EXPECT_EQ(ResolveGrain(kGrainAuto, 10, 8, 4), 4u);
}

TEST(GrainTest, ExecOptionsDefaultToAuto) {
  ExecOptions exec;
  EXPECT_EQ(exec.min_candidate_grain, kGrainAuto);
  EXPECT_EQ(exec.min_selection_grain, kGrainAuto);
  EXPECT_TRUE(exec.Validate().ok());
}

// ---- ParallelForDynamic ----

TEST(ParallelForDynamicTest, CoversEveryIndexExactlyOnceAtAnyWidth) {
  ThreadPool pool(4);
  for (int threads : {1, 2, 4, 8}) {
    for (size_t block_size : {1u, 3u, 7u, 100u, 1000u}) {
      std::vector<std::atomic<int>> seen(257);
      for (auto& s : seen) s = 0;
      Status status = ParallelForDynamic(
          &pool, seen.size(), threads, block_size,
          [&](size_t, size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) seen[i]++;
            return Status::OK();
          });
      ASSERT_TRUE(status.ok()) << status;
      for (auto& s : seen) EXPECT_EQ(s.load(), 1);
    }
  }
}

TEST(ParallelForDynamicTest, BlockDecompositionIsPureAndOrdered) {
  // block -> [begin, end) must be a pure function of (n, block_size):
  // begin == block * block_size regardless of claim order or thread count.
  ThreadPool pool(4);
  for (int threads : {1, 4}) {
    std::vector<std::pair<size_t, size_t>> ranges(12);
    Status status = ParallelForDynamic(
        &pool, 100, threads, 9,
        [&](size_t block, size_t begin, size_t end) {
          ranges[block] = {begin, end};
          return Status::OK();
        });
    ASSERT_TRUE(status.ok()) << status;
    for (size_t b = 0; b < ranges.size(); ++b) {
      EXPECT_EQ(ranges[b].first, b * 9);
      EXPECT_EQ(ranges[b].second, std::min<size_t>(100, b * 9 + 9));
    }
  }
}

TEST(ParallelForDynamicTest, LowestErroredBlockWins) {
  // Mirror of TaskGroup's lowest-spawn-index retention: when several
  // blocks error, the reported Status is the lowest block index's, at any
  // thread count.
  ThreadPool pool(4);
  for (int threads : {1, 2, 8}) {
    Status status = ParallelForDynamic(
        &pool, 64, threads, 1,
        [&](size_t block, size_t, size_t) {
          if (block >= 5) {
            return Status::Corruption("block " + std::to_string(block));
          }
          return Status::OK();
        });
    EXPECT_EQ(status.code(), StatusCode::kCorruption);
    EXPECT_EQ(status.message(), "block 5");
  }
}

TEST(ParallelForDynamicTest, ErrorStopsFurtherClaims) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  Status status = ParallelForDynamic(
      &pool, 1000, 2, 1,
      [&](size_t block, size_t, size_t) {
        ran++;
        if (block == 0) return Status::Corruption("first block broke");
        return Status::OK();
      });
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  // Blocks already claimed may finish, but the cursor stops advancing:
  // nowhere near all 1000 blocks should have run.
  EXPECT_LT(ran.load(), 1000);
}

TEST(ParallelForDynamicTest, ReportsScheduleStats) {
  ThreadPool pool(4);
  DynamicScheduleStats stats;
  Status status = ParallelForDynamic(
      &pool, 100, 4, 10,
      [](size_t, size_t, size_t) { return Status::OK(); }, &stats);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(stats.items, 100u);
  EXPECT_EQ(stats.blocks, 10u);
  EXPECT_GE(stats.workers, 1u);
  EXPECT_LE(stats.workers, 4u);
  uint64_t claimed = 0;
  for (uint64_t c : stats.blocks_per_worker) claimed += c;
  EXPECT_EQ(claimed, 10u);
  EXPECT_GE(stats.Imbalance(), 1.0);
}

TEST(ParallelForDynamicTest, SerialPathRunsInlineWithStats) {
  ThreadPool pool(2);
  DynamicScheduleStats stats;
  std::thread::id caller = std::this_thread::get_id();
  Status status = ParallelForDynamic(
      &pool, 50, 1, 10,
      [&](size_t, size_t, size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        return Status::OK();
      },
      &stats);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(stats.blocks, 5u);
  EXPECT_EQ(stats.workers, 1u);
}

// ---- Pool-owned per-thread scratch ----

TEST(ThreadPoolTest, LocalScratchIsStablePerThreadAndPool) {
  ThreadPool pool(2);
  // Same thread, same pool -> same object across calls.
  auto& a = pool.LocalScratch<std::vector<int>>();
  auto& b = pool.LocalScratch<std::vector<int>>();
  EXPECT_EQ(&a, &b);
  // A different pool hands this thread a different object.
  ThreadPool other(1);
  auto& c = other.LocalScratch<std::vector<int>>();
  EXPECT_NE(&a, &c);
  // A different T shares nothing with vector<int>'s slot.
  auto& d = pool.LocalScratch<std::vector<double>>();
  EXPECT_NE(static_cast<void*>(&a), static_cast<void*>(&d));
}

TEST(ThreadPoolTest, LocalScratchPersistsAcrossTasksOnOneThread) {
  // One worker runs both tasks, so the second sees capacity retained by
  // the first — the allocation-churn kill this scratch exists for.
  ThreadPool pool(1);
  TaskGroup group(&pool);
  group.Spawn([&] {
    auto& v = pool.LocalScratch<std::vector<int>>();
    v.reserve(4096);
    return Status::OK();
  });
  ASSERT_TRUE(group.Wait().ok());
  TaskGroup second(&pool);
  std::atomic<size_t> seen{0};
  second.Spawn([&] {
    seen = pool.LocalScratch<std::vector<int>>().capacity();
    return Status::OK();
  });
  ASSERT_TRUE(second.Wait().ok());
  // The helping Wait may have run either task on the main thread; accept
  // both outcomes but require the scratch to exist and be empty.
  ASSERT_TRUE(seen == 0 || seen >= 4096) << seen;
}

}  // namespace
}  // namespace idrepair
