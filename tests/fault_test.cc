// Unit tests for the deterministic fault-injection subsystem (src/fault/):
// spec validation, trigger semantics (on-Nth-hit exactness, seeded
// probabilistic determinism, max_fires caps), the global registry and its
// CLI arming grammar, and the Deadline budget with its forced-expiry
// failpoint.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "fault/deadline.h"
#include "fault/failpoint.h"

namespace idrepair {
namespace fault {
namespace {

// Every test must leave the process with nothing armed: chaos leaking into
// a later test would break its byte-identity assumptions.
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FailPointRegistry::Global().DisarmAll();
    EXPECT_FALSE(Armed());
  }
};

FaultSpec OnHit(uint64_t n, FaultAction action = FaultAction::kError) {
  FaultSpec spec;
  spec.action = action;
  spec.fire_on_hit = n;
  return spec;
}

FaultSpec OneIn(uint64_t n, uint64_t seed) {
  FaultSpec spec;
  spec.one_in = n;
  spec.seed = seed;
  return spec;
}

TEST_F(FaultTest, SpecRequiresExactlyOneTrigger) {
  FaultSpec neither;
  EXPECT_FALSE(neither.Validate().ok()) << "no trigger must be rejected";

  FaultSpec both;
  both.fire_on_hit = 1;
  both.one_in = 4;
  EXPECT_FALSE(both.Validate().ok()) << "two triggers must be rejected";

  EXPECT_TRUE(OnHit(1).Validate().ok());
  EXPECT_TRUE(OneIn(4, 7).Validate().ok());
}

TEST_F(FaultTest, DisarmedSiteIsFreeAndNeverFires) {
  EXPECT_FALSE(Armed());
  FailPoint* point = FailPointRegistry::Global().GetPoint("test.disarmed");
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(point->Evaluate().ok());
  }
  EXPECT_EQ(point->fires(), 0u);
  // Inject() on a never-armed name is OK too (site auto-created).
  EXPECT_TRUE(Inject("test.never.armed").ok());
}

TEST_F(FaultTest, FireOnNthHitFiresExactlyOnce) {
  FailPoint* point = FailPointRegistry::Global().GetPoint("test.on_hit");
  ASSERT_TRUE(point->Arm(OnHit(3)).ok());
  EXPECT_TRUE(Armed());

  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(!point->Evaluate().ok());
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, false}));
  EXPECT_EQ(point->hits(), 6u);
  EXPECT_EQ(point->fires(), 1u);
}

TEST_F(FaultTest, ErrorFireCarriesConfiguredCodeAndMessage) {
  FaultSpec spec = OnHit(1);
  spec.code = StatusCode::kIoError;
  spec.message = "disk gremlin";
  ASSERT_TRUE(FailPointRegistry::Global().Arm("test.error", spec).ok());
  Status st = Inject("test.error");
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_EQ(st.message(), "disk gremlin");
}

TEST_F(FaultTest, ActionsMapToStatusCodes) {
  ASSERT_TRUE(FailPointRegistry::Global()
                  .Arm("test.alloc", OnHit(1, FaultAction::kAllocFail))
                  .ok());
  EXPECT_EQ(Inject("test.alloc").code(), StatusCode::kResourceExhausted);

  ASSERT_TRUE(FailPointRegistry::Global()
                  .Arm("test.cancel", OnHit(1, FaultAction::kCancel))
                  .ok());
  EXPECT_EQ(Inject("test.cancel").code(), StatusCode::kCancelled);

  FaultSpec delay = OnHit(1, FaultAction::kDelay);
  delay.delay_micros = 1;
  ASSERT_TRUE(FailPointRegistry::Global().Arm("test.delay", delay).ok());
  EXPECT_TRUE(Inject("test.delay").ok()) << "delay fires still return OK";
  EXPECT_EQ(FailPointRegistry::Global().GetPoint("test.delay")->fires(), 1u);
}

TEST_F(FaultTest, OneInTriggerIsDeterministicInSeedAndHitIndex) {
  auto count_fires = [](uint64_t seed, int hits) {
    FailPoint point("test.local");
    EXPECT_TRUE(point.Arm(OneIn(4, seed)).ok());
    uint64_t fired = 0;
    for (int i = 0; i < hits; ++i) {
      if (!point.Evaluate().ok()) ++fired;
    }
    EXPECT_EQ(fired, point.fires());
    return point.fires();
  };

  // Same seed → same fire count, run after run.
  const uint64_t a = count_fires(/*seed=*/42, /*hits=*/400);
  EXPECT_EQ(count_fires(42, 400), a);
  // ~1/4 of 400 hits; a pure hash won't stray wildly from the mean.
  EXPECT_GT(a, 50u);
  EXPECT_LT(a, 160u);
  // Different seeds decide different hit indices (fire counts may rarely
  // collide, so compare against several seeds).
  bool any_difference = false;
  for (uint64_t seed : {7u, 8u, 9u, 10u}) {
    if (count_fires(seed, 400) != a) any_difference = true;
  }
  EXPECT_TRUE(any_difference);

  // one_in == 1 fires on every hit.
  FailPoint always("test.always");
  ASSERT_TRUE(always.Arm(OneIn(1, 0)).ok());
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(always.Evaluate().ok());
}

TEST_F(FaultTest, MaxFiresCapsFiringButNotCounting) {
  FaultSpec spec = OneIn(1, 0);  // would fire every hit...
  spec.max_fires = 2;            // ...but is capped at two fires
  FailPoint point("test.capped");
  ASSERT_TRUE(point.Arm(spec).ok());
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (!point.Evaluate().ok()) ++fired;
  }
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(point.fires(), 2u);
  EXPECT_EQ(point.hits(), 10u);
}

TEST_F(FaultTest, MaxFiresCapHoldsUnderConcurrentEvaluation) {
  FaultSpec spec = OneIn(1, 0);
  spec.max_fires = 5;
  FailPoint point("test.race");
  ASSERT_TRUE(point.Arm(spec).ok());
  std::atomic<int> fired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        if (!point.Evaluate().ok()) fired.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(fired.load(), 5);
  EXPECT_EQ(point.fires(), 5u);
  EXPECT_EQ(point.hits(), 1600u);
}

TEST_F(FaultTest, ReArmingResetsCountersDisarmKeepsThem) {
  FailPoint* point = FailPointRegistry::Global().GetPoint("test.rearm");
  ASSERT_TRUE(point->Arm(OnHit(1)).ok());
  EXPECT_FALSE(point->Evaluate().ok());
  EXPECT_EQ(point->fires(), 1u);

  point->Disarm();
  EXPECT_FALSE(point->armed());
  // Counters survive disarm so post-run assertions can read them.
  EXPECT_EQ(point->hits(), 1u);
  EXPECT_EQ(point->fires(), 1u);

  // Re-arming counts from zero: on_hit=1 fires again on the next hit.
  ASSERT_TRUE(point->Arm(OnHit(1)).ok());
  EXPECT_EQ(point->hits(), 0u);
  EXPECT_FALSE(point->Evaluate().ok());
}

TEST_F(FaultTest, RegistryArmDisarmAllAndSnapshot) {
  auto& registry = FailPointRegistry::Global();
  ASSERT_TRUE(registry.Arm("test.snap.a", OnHit(1)).ok());
  ASSERT_TRUE(registry.Arm("test.snap.b", OnHit(5)).ok());
  EXPECT_GE(registry.NumArmed(), 2u);
  EXPECT_FALSE(Inject("test.snap.a").ok());

  bool saw_a = false;
  for (const FailPointInfo& info : registry.Snapshot()) {
    if (info.name == "test.snap.a") {
      saw_a = true;
      EXPECT_TRUE(info.armed);
      EXPECT_EQ(info.hits, 1u);
      EXPECT_EQ(info.fires, 1u);
    }
  }
  EXPECT_TRUE(saw_a);
  EXPECT_GE(registry.TotalFires(), 1u);

  registry.DisarmAll();
  EXPECT_EQ(registry.NumArmed(), 0u);
  EXPECT_FALSE(Armed());
  EXPECT_TRUE(Inject("test.snap.b").ok());
}

TEST_F(FaultTest, ArmFromStringGrammar) {
  ASSERT_TRUE(ArmFromString("test.cli.a=error,on_hit=2;"
                            "test.cli.b=delay,one_in=10,seed=7,delay_us=1;"
                            "test.cli.c=alloc")
                  .ok());
  auto& registry = FailPointRegistry::Global();
  EXPECT_TRUE(registry.GetPoint("test.cli.a")->armed());
  EXPECT_TRUE(registry.GetPoint("test.cli.b")->armed());
  EXPECT_TRUE(registry.GetPoint("test.cli.c")->armed());

  // Bare action defaults to firing on the first hit.
  EXPECT_TRUE(Inject("test.cli.c").code() == StatusCode::kResourceExhausted);
  // on_hit=2: first hit clean, second fires.
  EXPECT_TRUE(Inject("test.cli.a").ok());
  EXPECT_FALSE(Inject("test.cli.a").ok());
}

TEST_F(FaultTest, ArmFromStringRejectsMalformedSpecs) {
  EXPECT_FALSE(ArmFromString("no-equals-sign").ok());
  EXPECT_FALSE(ArmFromString("site=explode").ok()) << "unknown action";
  EXPECT_FALSE(ArmFromString("site=error,on_hit=nope").ok());
  EXPECT_FALSE(ArmFromString("site=error,bogus_key=1").ok());
  EXPECT_FALSE(ArmFromString("site=error,on_hit=1,one_in=2").ok())
      << "both triggers";
  EXPECT_FALSE(ArmFromString("=error").ok()) << "empty site name";
}

TEST_F(FaultTest, MaybePerturbSwallowsErrorsButCounts) {
  ASSERT_TRUE(
      FailPointRegistry::Global().Arm("test.perturb", OnHit(1)).ok());
  MaybePerturb("test.perturb");  // would be an error through Inject()
  EXPECT_EQ(FailPointRegistry::Global().GetPoint("test.perturb")->fires(), 1u);
}

TEST_F(FaultTest, DeadlineInfiniteNeverExpires) {
  Deadline d = Deadline::Infinite();
  EXPECT_FALSE(d.enabled());
  EXPECT_FALSE(d.Expired());
  EXPECT_TRUE(d.Check("anywhere").ok());
  EXPECT_FALSE(Deadline::FromMillis(0).enabled());
  EXPECT_FALSE(Deadline::FromMillis(-5).enabled());
}

TEST_F(FaultTest, DeadlineFromMillisExpiresAfterBudget) {
  Deadline d = Deadline::FromMillis(1);
  EXPECT_TRUE(d.enabled());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(d.Expired());
  Status st = d.Check("phase boundary");
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(st.message().find("phase boundary"), std::string::npos);
}

TEST_F(FaultTest, ForcedExpiryFailpointOnlyAffectsEnabledDeadlines) {
  FaultSpec spec = OnHit(2);
  ASSERT_TRUE(
      FailPointRegistry::Global().Arm(kDeadlineExpireSite, spec).ok());

  // A disabled deadline never consults the site.
  Deadline off = Deadline::Infinite();
  EXPECT_FALSE(off.Expired());
  EXPECT_FALSE(off.Expired());
  EXPECT_EQ(FailPointRegistry::Global().GetPoint(kDeadlineExpireSite)->hits(),
            0u);

  // An enabled (but far-future) deadline expires exactly at the armed check.
  Deadline on = Deadline::FromMillis(600000);
  EXPECT_FALSE(on.Expired()) << "first check: trigger not reached";
  EXPECT_TRUE(on.Expired()) << "second check: forced expiry";
  EXPECT_EQ(on.Check("forced").code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace fault
}  // namespace idrepair
