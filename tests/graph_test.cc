#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/paths.h"
#include "graph/reachability.h"
#include "graph/transition_graph.h"

namespace idrepair {
namespace {

// --------------------------------------------------------- TransitionGraph

TEST(TransitionGraphTest, AddLocationAssignsDenseIds) {
  TransitionGraph g;
  EXPECT_EQ(g.AddLocation("A"), 0u);
  EXPECT_EQ(g.AddLocation("B"), 1u);
  EXPECT_EQ(g.num_locations(), 2u);
  EXPECT_EQ(g.LocationName(0), "A");
  EXPECT_EQ(g.LocationName(1), "B");
}

TEST(TransitionGraphTest, AddLocationIsIdempotentPerName) {
  TransitionGraph g;
  LocationId a1 = g.AddLocation("A");
  LocationId a2 = g.AddLocation("A");
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(g.num_locations(), 1u);
}

TEST(TransitionGraphTest, FindLocation) {
  TransitionGraph g;
  g.AddLocation("X");
  EXPECT_EQ(g.FindLocation("X"), std::optional<LocationId>(0));
  EXPECT_EQ(g.FindLocation("Y"), std::nullopt);
}

TEST(TransitionGraphTest, AddEdgeAndHasEdge) {
  TransitionGraph g;
  LocationId a = g.AddLocation("A");
  LocationId b = g.AddLocation("B");
  EXPECT_FALSE(g.HasEdge(a, b));
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  EXPECT_TRUE(g.HasEdge(a, b));
  EXPECT_FALSE(g.HasEdge(b, a));  // directed
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(TransitionGraphTest, AddEdgeIsIdempotent) {
  TransitionGraph g;
  LocationId a = g.AddLocation("A");
  LocationId b = g.AddLocation("B");
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.OutNeighbors(a).size(), 1u);
}

TEST(TransitionGraphTest, AddEdgeRejectsOutOfRangeIds) {
  TransitionGraph g;
  g.AddLocation("A");
  EXPECT_EQ(g.AddEdge(0, 5).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.AddEdge(5, 0).code(), StatusCode::kInvalidArgument);
}

TEST(TransitionGraphTest, AddEdgeByNameResolvesOrFails) {
  TransitionGraph g;
  g.AddLocation("A");
  g.AddLocation("B");
  EXPECT_TRUE(g.AddEdge("A", "B").ok());
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_EQ(g.AddEdge("A", "Z").code(), StatusCode::kNotFound);
}

TEST(TransitionGraphTest, EdgeMatrixSurvivesLaterLocationGrowth) {
  TransitionGraph g;
  LocationId a = g.AddLocation("A");
  LocationId b = g.AddLocation("B");
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  LocationId c = g.AddLocation("C");  // grows the dense matrix
  EXPECT_TRUE(g.HasEdge(a, b));
  EXPECT_FALSE(g.HasEdge(a, c));
  ASSERT_TRUE(g.AddEdge(b, c).ok());
  EXPECT_TRUE(g.HasEdge(b, c));
}

TEST(TransitionGraphTest, InAndOutNeighbors) {
  TransitionGraph g = MakePaperExampleGraph();
  // B has out-neighbors C and D; D has in-neighbors B and C.
  EXPECT_EQ(g.OutNeighbors(1), (std::vector<LocationId>{2, 3}));
  EXPECT_EQ(g.InNeighbors(3), (std::vector<LocationId>{1, 2}));
}

TEST(TransitionGraphTest, EntrancesAndExits) {
  TransitionGraph g = MakePaperExampleGraph();
  EXPECT_EQ(g.entrances(), (std::vector<LocationId>{0, 2}));
  EXPECT_EQ(g.exits(), (std::vector<LocationId>{4}));
  EXPECT_TRUE(g.IsEntrance(0));
  EXPECT_TRUE(g.IsEntrance(2));
  EXPECT_FALSE(g.IsEntrance(1));
  EXPECT_TRUE(g.IsExit(4));
  EXPECT_FALSE(g.IsExit(3));
}

TEST(TransitionGraphTest, MarkEntranceIsIdempotent) {
  TransitionGraph g;
  LocationId a = g.AddLocation("A");
  ASSERT_TRUE(g.MarkEntrance(a).ok());
  ASSERT_TRUE(g.MarkEntrance(a).ok());
  EXPECT_EQ(g.entrances().size(), 1u);
  EXPECT_EQ(g.MarkEntrance(9).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.MarkExit(9).code(), StatusCode::kInvalidArgument);
}

TEST(TransitionGraphTest, ValidateRequiresEntranceAndExit) {
  TransitionGraph g;
  EXPECT_FALSE(g.Validate().ok());  // empty
  LocationId a = g.AddLocation("A");
  EXPECT_FALSE(g.Validate().ok());  // no entrance
  ASSERT_TRUE(g.MarkEntrance(a).ok());
  EXPECT_FALSE(g.Validate().ok());  // no exit
  ASSERT_TRUE(g.MarkExit(a).ok());
  EXPECT_TRUE(g.Validate().ok());
}

// Valid paths on the Figure 1(b) graph: A=0, B=1, C=2, D=3, E=4.
TEST(TransitionGraphTest, IsValidPathAcceptsPaperPaths) {
  TransitionGraph g = MakePaperExampleGraph();
  std::vector<LocationId> abde = {0, 1, 3, 4};
  std::vector<LocationId> abcde = {0, 1, 2, 3, 4};
  std::vector<LocationId> cde = {2, 3, 4};
  EXPECT_TRUE(g.IsValidPath(abde));
  EXPECT_TRUE(g.IsValidPath(abcde));
  EXPECT_TRUE(g.IsValidPath(cde));
}

TEST(TransitionGraphTest, IsValidPathRejectsViolations) {
  TransitionGraph g = MakePaperExampleGraph();
  std::vector<LocationId> starts_mid = {1, 3, 4};     // B not an entrance
  std::vector<LocationId> ends_mid = {0, 1, 3};       // D not an exit
  std::vector<LocationId> skips_edge = {0, 3, 4};     // no A->D edge
  std::vector<LocationId> single_entrance = {2};      // C entrance, not exit
  std::vector<LocationId> empty;
  EXPECT_FALSE(g.IsValidPath(starts_mid));
  EXPECT_FALSE(g.IsValidPath(ends_mid));
  EXPECT_FALSE(g.IsValidPath(skips_edge));
  EXPECT_FALSE(g.IsValidPath(single_entrance));
  EXPECT_FALSE(g.IsValidPath(empty));
}

TEST(TransitionGraphTest, IsValidPathPrefix) {
  TransitionGraph g = MakePaperExampleGraph();
  std::vector<LocationId> ab = {0, 1};
  std::vector<LocationId> a = {0};
  std::vector<LocationId> bd = {1, 3};      // starts mid-graph
  std::vector<LocationId> ad = {0, 3};      // missing edge
  std::vector<LocationId> full = {0, 1, 2, 3, 4};
  EXPECT_TRUE(g.IsValidPathPrefix(ab));
  EXPECT_TRUE(g.IsValidPathPrefix(a));
  EXPECT_TRUE(g.IsValidPathPrefix(full));
  EXPECT_FALSE(g.IsValidPathPrefix(bd));
  EXPECT_FALSE(g.IsValidPathPrefix(ad));
}

TEST(TransitionGraphTest, PrefixRequiresExitStillReachable) {
  TransitionGraph g;
  LocationId a = g.AddLocation("A");
  LocationId b = g.AddLocation("B");
  LocationId dead = g.AddLocation("dead");
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  ASSERT_TRUE(g.AddEdge(a, dead).ok());
  ASSERT_TRUE(g.MarkEntrance(a).ok());
  ASSERT_TRUE(g.MarkExit(b).ok());
  std::vector<LocationId> into_dead = {a, dead};
  EXPECT_FALSE(g.IsValidPathPrefix(into_dead));
}

TEST(TransitionGraphTest, CanReachExitUpdatesAfterMutation) {
  TransitionGraph g;
  LocationId a = g.AddLocation("A");
  LocationId b = g.AddLocation("B");
  ASSERT_TRUE(g.MarkExit(b).ok());
  EXPECT_FALSE(g.CanReachExit(a));
  EXPECT_TRUE(g.CanReachExit(b));
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  EXPECT_TRUE(g.CanReachExit(a));
}

// ------------------------------------------------------ ReachabilityMatrix

TEST(ReachabilityTest, HopCountsOnPaperGraph) {
  TransitionGraph g = MakePaperExampleGraph();
  auto m = ReachabilityMatrix::Build(g);
  EXPECT_EQ(m.Hops(0, 1), 1u);  // A->B
  EXPECT_EQ(m.Hops(0, 2), 2u);  // A->B->C
  EXPECT_EQ(m.Hops(0, 3), 2u);  // A->B->D
  EXPECT_EQ(m.Hops(0, 4), 3u);  // A->B->D->E
  EXPECT_EQ(m.Hops(2, 4), 2u);  // C->D->E
  EXPECT_EQ(m.Hops(4, 0), ReachabilityMatrix::kUnreachable);
}

TEST(ReachabilityTest, DiagonalIsUnreachableInAcyclicGraph) {
  TransitionGraph g = MakePaperExampleGraph();
  auto m = ReachabilityMatrix::Build(g);
  for (LocationId v = 0; v < g.num_locations(); ++v) {
    EXPECT_EQ(m.Hops(v, v), ReachabilityMatrix::kUnreachable);
  }
}

TEST(ReachabilityTest, DiagonalIsShortestCycleLength) {
  TransitionGraph g;
  LocationId a = g.AddLocation("A");
  LocationId b = g.AddLocation("B");
  LocationId c = g.AddLocation("C");
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  ASSERT_TRUE(g.AddEdge(b, c).ok());
  ASSERT_TRUE(g.AddEdge(c, a).ok());
  auto m = ReachabilityMatrix::Build(g);
  EXPECT_EQ(m.Hops(a, a), 3u);
  EXPECT_EQ(m.Hops(b, b), 3u);
  EXPECT_EQ(m.Hops(c, c), 3u);
}

TEST(ReachabilityTest, SelfLoopGivesCycleLengthOne) {
  TransitionGraph g;
  LocationId a = g.AddLocation("A");
  ASSERT_TRUE(g.AddEdge(a, a).ok());
  auto m = ReachabilityMatrix::Build(g);
  EXPECT_EQ(m.Hops(a, a), 1u);
}

TEST(ReachabilityTest, ReachableRespectsHopBudget) {
  TransitionGraph g = MakePaperExampleGraph();
  auto m = ReachabilityMatrix::Build(g);
  EXPECT_TRUE(m.Reachable(0, 4, 3));   // A->E in 3 hops
  EXPECT_FALSE(m.Reachable(0, 4, 2));  // not in 2
  EXPECT_FALSE(m.Reachable(4, 0, 100));
}

TEST(ReachabilityTest, MatchesBfsOnRandomDags) {
  // Property: Floyd–Warshall hop counts equal a per-source BFS.
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    TransitionGraph g = MakeChainGraph(8);
    AddRandomForwardEdges(g, 6, rng);
    auto m = ReachabilityMatrix::Build(g);
    size_t n = g.num_locations();
    for (LocationId s = 0; s < n; ++s) {
      // BFS over non-empty walks from s.
      std::vector<uint32_t> dist(n, ReachabilityMatrix::kUnreachable);
      std::vector<LocationId> frontier = {s};
      uint32_t depth = 0;
      std::vector<bool> visited(n, false);
      while (!frontier.empty()) {
        ++depth;
        std::vector<LocationId> next;
        for (LocationId u : frontier) {
          for (LocationId v : g.OutNeighbors(u)) {
            if (dist[v] == ReachabilityMatrix::kUnreachable) {
              dist[v] = depth;
              next.push_back(v);
            }
          }
        }
        frontier = std::move(next);
        if (depth > n + 1) break;
      }
      (void)visited;
      for (LocationId t = 0; t < n; ++t) {
        EXPECT_EQ(m.Hops(s, t), dist[t]) << "s=" << s << " t=" << t;
      }
    }
  }
}

TEST(ReachabilityTest, BoundedBuildMatchesDenseWithinBound) {
  // Property: for every hop budget <= the build bound, the sparse BFS
  // build answers Hops/Reachable exactly like the dense Floyd–Warshall —
  // including the diagonal-as-shortest-cycle semantics — on both cyclic and
  // acyclic shapes. This is the contract that lets PredicateEvaluator swap
  // builds on city-scale graphs.
  Rng rng(123);
  for (int trial = 0; trial < 8; ++trial) {
    TransitionGraph g = MakeChainGraph(9);
    AddRandomEdges(g, 10, rng);  // backward edges create cycles
    auto dense = ReachabilityMatrix::Build(g);
    for (uint32_t bound : {0u, 1u, 3u, 5u, 12u}) {
      auto sparse = ReachabilityMatrix::BuildBounded(g, bound);
      EXPECT_FALSE(sparse.dense());
      EXPECT_EQ(sparse.bound(), bound);
      size_t n = g.num_locations();
      for (LocationId s = 0; s < n; ++s) {
        for (LocationId t = 0; t < n; ++t) {
          uint32_t want = dense.Hops(s, t);
          uint32_t got = sparse.Hops(s, t);
          if (want != ReachabilityMatrix::kUnreachable && want <= bound) {
            EXPECT_EQ(got, want) << "s=" << s << " t=" << t;
          } else {
            EXPECT_EQ(got, ReachabilityMatrix::kUnreachable)
                << "s=" << s << " t=" << t << " bound=" << bound;
          }
          for (uint32_t h = 0; h <= bound; ++h) {
            EXPECT_EQ(sparse.Reachable(s, t, h), dense.Reachable(s, t, h))
                << "s=" << s << " t=" << t << " h=" << h;
          }
        }
      }
    }
  }
}

// ----------------------------------------------------------------- Paths

TEST(PathsTest, EnumerateValidPathsOnPaperGraph) {
  TransitionGraph g = MakePaperExampleGraph();
  auto paths = EnumerateValidPaths(g, 5);
  ASSERT_TRUE(paths.ok());
  // Exactly three valid paths: ABCDE, ABDE, CDE.
  ASSERT_EQ(paths->size(), 3u);
  std::set<std::vector<LocationId>> expected = {
      {0, 1, 2, 3, 4}, {0, 1, 3, 4}, {2, 3, 4}};
  std::set<std::vector<LocationId>> got(paths->begin(), paths->end());
  EXPECT_EQ(got, expected);
}

TEST(PathsTest, MaxLenLimitsPaths) {
  TransitionGraph g = MakePaperExampleGraph();
  auto paths = EnumerateValidPaths(g, 4);
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ(paths->size(), 2u);  // ABCDE excluded
  auto paths3 = EnumerateValidPaths(g, 3);
  ASSERT_TRUE(paths3.ok());
  EXPECT_EQ(paths3->size(), 1u);  // only CDE
}

TEST(PathsTest, EveryEnumeratedPathIsValid) {
  TransitionGraph g = MakeGridNetwork(3, 4);
  auto paths = EnumerateValidPaths(g, 7);
  ASSERT_TRUE(paths.ok());
  EXPECT_GT(paths->size(), 0u);
  for (const auto& p : *paths) {
    EXPECT_TRUE(g.IsValidPath(p));
    EXPECT_LE(p.size(), 7u);
  }
}

TEST(PathsTest, EnumerationCapsPathExplosion) {
  TransitionGraph g = MakeGridNetwork(6, 6);
  auto paths = EnumerateValidPaths(g, 12, /*max_paths=*/10);
  EXPECT_FALSE(paths.ok());
  EXPECT_EQ(paths.status().code(), StatusCode::kOutOfRange);
}

TEST(PathsTest, EnumerationRejectsInvalidGraph) {
  TransitionGraph g;
  g.AddLocation("A");
  auto paths = EnumerateValidPaths(g, 3);
  EXPECT_FALSE(paths.ok());
}

TEST(PathsTest, SamplerDrawsOnlyValidPaths) {
  TransitionGraph g = MakePaperExampleGraph();
  auto sampler = ValidPathSampler::Create(g, 5);
  ASSERT_TRUE(sampler.ok());
  EXPECT_EQ(sampler->num_paths(), 3u);
  Rng rng(4);
  std::set<size_t> lengths;
  for (int i = 0; i < 100; ++i) {
    const auto& p = sampler->Sample(rng);
    EXPECT_TRUE(g.IsValidPath(p));
    lengths.insert(p.size());
  }
  EXPECT_EQ(lengths, (std::set<size_t>{3, 4, 5}));  // all paths drawn
}

TEST(PathsTest, SamplerFailsWithoutValidPaths) {
  TransitionGraph g;
  LocationId a = g.AddLocation("A");
  LocationId b = g.AddLocation("B");
  ASSERT_TRUE(g.MarkEntrance(a).ok());
  ASSERT_TRUE(g.MarkExit(b).ok());
  // No edge A->B: no valid path exists.
  auto sampler = ValidPathSampler::Create(g, 5);
  EXPECT_FALSE(sampler.ok());
  EXPECT_EQ(sampler.status().code(), StatusCode::kNotFound);
}

// ------------------------------------------------------------- Generators

TEST(GeneratorsTest, PaperExampleGraphShape) {
  TransitionGraph g = MakePaperExampleGraph();
  EXPECT_EQ(g.num_locations(), 5u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(GeneratorsTest, RealLikeGraphShape) {
  TransitionGraph g = MakeRealLikeGraph();
  EXPECT_EQ(g.num_locations(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.Validate().ok());
  auto paths = EnumerateValidPaths(g, 4);
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ(paths->size(), 3u);  // ABCD, ABD, CD
}

TEST(GeneratorsTest, ChainGraphShape) {
  for (size_t n : {2u, 6u, 10u}) {
    TransitionGraph g = MakeChainGraph(n);
    EXPECT_EQ(g.num_locations(), n);
    EXPECT_EQ(g.num_edges(), n - 1);
    EXPECT_TRUE(g.Validate().ok());
    auto paths = EnumerateValidPaths(g, n);
    ASSERT_TRUE(paths.ok());
    EXPECT_EQ(paths->size(), 1u);  // the chain itself
  }
}

TEST(GeneratorsTest, AddRandomForwardEdgesAddsExactlyCount) {
  Rng rng(8);
  TransitionGraph g = MakeChainGraph(8);
  size_t before = g.num_edges();
  size_t added = AddRandomForwardEdges(g, 3, rng);
  EXPECT_EQ(added, 3u);
  EXPECT_EQ(g.num_edges(), before + 3);
}

TEST(GeneratorsTest, AddRandomForwardEdgesOnlyAddsForward) {
  Rng rng(8);
  TransitionGraph g = MakeChainGraph(6);
  AddRandomForwardEdges(g, 100, rng);  // saturate
  for (LocationId u = 0; u < g.num_locations(); ++u) {
    for (LocationId v : g.OutNeighbors(u)) {
      EXPECT_LT(u, v);
    }
  }
  // Saturated DAG on 6 vertices has 15 edges.
  EXPECT_EQ(g.num_edges(), 15u);
}

TEST(GeneratorsTest, AddRandomForwardEdgesSaturates) {
  Rng rng(8);
  TransitionGraph g = MakeChainGraph(4);
  size_t added = AddRandomForwardEdges(g, 100, rng);
  EXPECT_EQ(added, 3u);  // 6 possible forward edges, 3 already in the chain
}

TEST(GeneratorsTest, GridNetworkValidates) {
  TransitionGraph g = MakeGridNetwork(3, 5);
  EXPECT_EQ(g.num_locations(), 15u);
  EXPECT_TRUE(g.Validate().ok());
  EXPECT_EQ(g.entrances().size(), 3u);
  EXPECT_EQ(g.exits().size(), 3u);
  // Every vertex can reach an exit (east column is absorbing).
  for (LocationId v = 0; v < g.num_locations(); ++v) {
    EXPECT_TRUE(g.CanReachExit(v)) << g.LocationName(v);
  }
}

}  // namespace
}  // namespace idrepair
