#include <gtest/gtest.h>

#include "common/flags.h"

namespace idrepair {
namespace {

Result<FlagParser> ParseArgs(std::vector<const char*> argv,
                             std::vector<std::string> bools = {}) {
  return FlagParser::Parse(static_cast<int>(argv.size()), argv.data(),
                           bools);
}

TEST(FlagParserTest, EqualsSyntax) {
  auto p = ParseArgs({"--theta=4", "--name=hello"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->GetString("name"), "hello");
  EXPECT_EQ(*p->GetInt("theta", 0), 4);
}

TEST(FlagParserTest, SpaceSyntax) {
  auto p = ParseArgs({"--theta", "4", "--name", "hello"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->GetString("name"), "hello");
  EXPECT_EQ(*p->GetInt("theta", 0), 4);
}

TEST(FlagParserTest, BooleanSwitches) {
  auto p = ParseArgs({"--verbose", "--out", "x.csv"}, {"verbose"});
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->GetBool("verbose"));
  EXPECT_FALSE(p->GetBool("quiet"));
  EXPECT_EQ(p->GetString("out"), "x.csv");
}

TEST(FlagParserTest, PositionalArguments) {
  auto p = ParseArgs({"input.csv", "--k=1", "more"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->positional(),
            (std::vector<std::string>{"input.csv", "more"}));
}

TEST(FlagParserTest, MissingValueIsAnError) {
  auto p = ParseArgs({"--out"});
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument);
}

TEST(FlagParserTest, BareDashDashIsAnError) {
  auto p = ParseArgs({"--"});
  EXPECT_FALSE(p.ok());
}

TEST(FlagParserTest, DefaultsApplyWhenAbsent) {
  auto p = ParseArgs({});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->GetString("name", "dflt"), "dflt");
  EXPECT_EQ(*p->GetInt("k", 7), 7);
  EXPECT_DOUBLE_EQ(*p->GetDouble("rate", 0.25), 0.25);
}

TEST(FlagParserTest, MalformedNumbersAreErrors) {
  auto p = ParseArgs({"--k=abc", "--rate=1.2.3"});
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->GetInt("k", 0).ok());
  EXPECT_FALSE(p->GetDouble("rate", 0).ok());
}

TEST(FlagParserTest, NegativeAndFloatValues) {
  auto p = ParseArgs({"--k=-12", "--rate=0.5"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p->GetInt("k", 0), -12);
  EXPECT_DOUBLE_EQ(*p->GetDouble("rate", 0), 0.5);
}

TEST(FlagParserTest, EmptyValueViaEquals) {
  auto p = ParseArgs({"--name="});
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->Has("name"));
  EXPECT_EQ(p->GetString("name", "x"), "");
}

TEST(FlagParserTest, LaterValueWins) {
  auto p = ParseArgs({"--k=1", "--k=2"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p->GetInt("k", 0), 2);
}

}  // namespace
}  // namespace idrepair
