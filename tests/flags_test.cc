#include <gtest/gtest.h>

#include "common/flags.h"
#include "exec/grain.h"
#include "fault/failpoint.h"
#include "repair/options.h"

namespace idrepair {
namespace {

Result<FlagParser> ParseArgs(std::vector<const char*> argv,
                             std::vector<std::string> bools = {}) {
  return FlagParser::Parse(static_cast<int>(argv.size()), argv.data(),
                           bools);
}

TEST(FlagParserTest, EqualsSyntax) {
  auto p = ParseArgs({"--theta=4", "--name=hello"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->GetString("name"), "hello");
  EXPECT_EQ(*p->GetInt("theta", 0), 4);
}

TEST(FlagParserTest, SpaceSyntax) {
  auto p = ParseArgs({"--theta", "4", "--name", "hello"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->GetString("name"), "hello");
  EXPECT_EQ(*p->GetInt("theta", 0), 4);
}

TEST(FlagParserTest, BooleanSwitches) {
  auto p = ParseArgs({"--verbose", "--out", "x.csv"}, {"verbose"});
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->GetBool("verbose"));
  EXPECT_FALSE(p->GetBool("quiet"));
  EXPECT_EQ(p->GetString("out"), "x.csv");
}

TEST(FlagParserTest, PositionalArguments) {
  auto p = ParseArgs({"input.csv", "--k=1", "more"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->positional(),
            (std::vector<std::string>{"input.csv", "more"}));
}

TEST(FlagParserTest, MissingValueIsAnError) {
  auto p = ParseArgs({"--out"});
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument);
}

TEST(FlagParserTest, BareDashDashIsAnError) {
  auto p = ParseArgs({"--"});
  EXPECT_FALSE(p.ok());
}

TEST(FlagParserTest, DefaultsApplyWhenAbsent) {
  auto p = ParseArgs({});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->GetString("name", "dflt"), "dflt");
  EXPECT_EQ(*p->GetInt("k", 7), 7);
  EXPECT_DOUBLE_EQ(*p->GetDouble("rate", 0.25), 0.25);
}

TEST(FlagParserTest, MalformedNumbersAreErrors) {
  auto p = ParseArgs({"--k=abc", "--rate=1.2.3"});
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->GetInt("k", 0).ok());
  EXPECT_FALSE(p->GetDouble("rate", 0).ok());
}

TEST(FlagParserTest, NegativeAndFloatValues) {
  auto p = ParseArgs({"--k=-12", "--rate=0.5"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p->GetInt("k", 0), -12);
  EXPECT_DOUBLE_EQ(*p->GetDouble("rate", 0), 0.5);
}

TEST(FlagParserTest, EmptyValueViaEquals) {
  auto p = ParseArgs({"--name="});
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->Has("name"));
  EXPECT_EQ(p->GetString("name", "x"), "");
}

TEST(FlagParserTest, LaterValueWins) {
  auto p = ParseArgs({"--k=1", "--k=2"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p->GetInt("k", 0), 2);
}

// The CLI's --deadline-ms flag path: parsed as an integer, carried into
// RepairOptions, and rejected when negative by options validation — the
// same checks tools/idrepair_cli.cc layers on top of FlagParser.
TEST(FlagParserTest, DeadlineMsFlagRoundTripsIntoOptions) {
  auto p = ParseArgs({"--deadline-ms=2500"});
  ASSERT_TRUE(p.ok());
  auto ms = p->GetInt("deadline-ms", 0);
  ASSERT_TRUE(ms.ok());
  RepairOptions options = RepairOptions().WithDeadlineMs(*ms);
  EXPECT_EQ(options.deadline_ms, 2500);
  EXPECT_TRUE(options.Validate().ok());

  EXPECT_FALSE(RepairOptions().WithDeadlineMs(-1).Validate().ok());
  // Absent flag: default 0 = no budget, and that validates.
  auto none = ParseArgs({});
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(*none->GetInt("deadline-ms", 0), 0);
}

// The CLI's --metrics-interval flag path: parsed as an integer, carried
// into ObsOptions::metrics_interval_ms, and rejected when negative by
// options validation. 0 (the default) means "no periodic scraping" — the
// CLI then writes one final exposition exactly as before the flag existed.
TEST(FlagParserTest, MetricsIntervalFlagRoundTripsIntoOptions) {
  auto p = ParseArgs({"--metrics-interval=250"});
  ASSERT_TRUE(p.ok());
  auto ms = p->GetInt("metrics-interval", 0);
  ASSERT_TRUE(ms.ok());
  RepairOptions options = RepairOptions().WithMetricsIntervalMs(*ms);
  EXPECT_EQ(options.obs.metrics_interval_ms, 250);
  EXPECT_TRUE(options.Validate().ok());

  EXPECT_FALSE(RepairOptions().WithMetricsIntervalMs(-1).Validate().ok());
  auto none = ParseArgs({});
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(*none->GetInt("metrics-interval", 0), 0);
}

// The CLI's --failpoints flag value is a registry spec string; a valid one
// arms sites, a malformed one is rejected before any repair runs.
TEST(FlagParserTest, FailpointsFlagValueArmsRegistry) {
  auto p = ParseArgs(
      {"--failpoints=flags.test.a=error,on_hit=7;flags.test.b=delay"});
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(fault::ArmFromString(p->GetString("failpoints")).ok());
  auto& registry = fault::FailPointRegistry::Global();
  EXPECT_TRUE(registry.GetPoint("flags.test.a")->armed());
  EXPECT_TRUE(registry.GetPoint("flags.test.b")->armed());
  registry.DisarmAll();

  auto bad = ParseArgs({"--failpoints=flags.test.c=explode"});
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(fault::ArmFromString(bad->GetString("failpoints")).ok());
  EXPECT_FALSE(fault::Armed());
}

// The CLI's --failpoints-status dump: exact text pinned here — name-sorted,
// one `  <site> armed= hits= fires=` line per site that is armed or was
// evaluated, and a fixed placeholder when nothing was touched. Scripts
// parse this output; change it deliberately or not at all.
TEST(FlagParserTest, FailpointsStatusDumpIsPinned) {
  auto& registry = fault::FailPointRegistry::Global();
  registry.DisarmAll();
  EXPECT_EQ(registry.RenderStatus(),
            "failpoints: no sites armed or evaluated\n");

  fault::FaultSpec fire_second;
  fire_second.action = fault::FaultAction::kError;
  fire_second.fire_on_hit = 2;
  ASSERT_TRUE(registry.Arm("flags.status.b", fire_second).ok());
  fault::FaultSpec silent;
  silent.action = fault::FaultAction::kDelay;
  silent.delay_micros = 0;
  silent.fire_on_hit = 9;
  ASSERT_TRUE(registry.Arm("flags.status.a", silent).ok());

  // b: three evaluations, the second fires. a: one evaluation, no fire.
  EXPECT_TRUE(registry.GetPoint("flags.status.b")->Evaluate().ok());
  EXPECT_FALSE(registry.GetPoint("flags.status.b")->Evaluate().ok());
  EXPECT_TRUE(registry.GetPoint("flags.status.b")->Evaluate().ok());
  EXPECT_TRUE(registry.GetPoint("flags.status.a")->Evaluate().ok());

  EXPECT_EQ(registry.RenderStatus(),
            "failpoints:\n"
            "  flags.status.a armed=1 hits=1 fires=0\n"
            "  flags.status.b armed=1 hits=3 fires=1\n");

  // Disarming keeps the counters (post-run inspection), drops the armed
  // bit; untouched disarmed sites vanish from the dump.
  registry.DisarmAll();
  EXPECT_EQ(registry.RenderStatus(),
            "failpoints:\n"
            "  flags.status.a armed=0 hits=1 fires=0\n"
            "  flags.status.b armed=0 hits=3 fires=1\n");
}

// The CLI grain flags (--candidate-grain / --selection-grain) accept the
// literal "auto" (the default) or a positive integer; everything else is a
// flag-naming InvalidArgument. Pinned because the "auto" spelling is a
// documented CLI contract (README flag table).
TEST(FlagParserTest, GrainValuesParseAutoAndIntegers) {
  auto autov = ParseGrainValue("auto", "candidate-grain");
  ASSERT_TRUE(autov.ok());
  EXPECT_EQ(*autov, kGrainAuto);

  auto one = ParseGrainValue("1", "candidate-grain");
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(*one, 1u);
  auto big = ParseGrainValue("65536", "selection-grain");
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(*big, 65536u);

  for (const char* bad : {"", "0", "-4", "4x", "Auto", "AUTO", " auto",
                          "1e3", "99999999999999999999"}) {
    auto r = ParseGrainValue(bad, "candidate-grain");
    ASSERT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << bad;
    EXPECT_NE(r.status().message().find("--candidate-grain"),
              std::string::npos)
        << r.status();
  }
}

}  // namespace
}  // namespace idrepair
