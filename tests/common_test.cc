#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/bitset.h"
#include "common/flat_hash.h"
#include "common/resource.h"
#include "common/rng.h"
#include "common/span.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace idrepair {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  std::vector<Case> cases = {
      {Status::InvalidArgument("m"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("m"), StatusCode::kNotFound, "NotFound"},
      {Status::OutOfRange("m"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::Corruption("m"), StatusCode::kCorruption, "Corruption"},
      {Status::IoError("m"), StatusCode::kIoError, "IoError"},
      {Status::Unimplemented("m"), StatusCode::kUnimplemented,
       "Unimplemented"},
      {Status::Internal("m"), StatusCode::kInternal, "Internal"},
  };
  for (const auto& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(c.status.message(), "m");
    EXPECT_EQ(c.status.ToString(), std::string(c.name) + ": m");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Corruption("x"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    IDREPAIR_RETURN_NOT_OK(Status::Corruption("bad"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kCorruption);
  auto passes = []() -> Status {
    IDREPAIR_RETURN_NOT_OK(Status::OK());
    return Status::InvalidArgument("reached");
  };
  EXPECT_EQ(passes().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(r.value_or(9), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(9), 9);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

// ------------------------------------------------------------ string_util

TEST(StringUtilTest, SplitBasic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, SplitSingleField) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts = {"x", "y", "", "z"};
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(StringUtilTest, JoinEmpty) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, TrimRemovesAsciiWhitespace) {
  EXPECT_EQ(Trim("  abc\t\n"), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" a b "), "a b");
}

TEST(StringUtilTest, ToFixedFormatsDigits) {
  EXPECT_EQ(ToFixed(1.23456, 2), "1.23");
  EXPECT_EQ(ToFixed(1.0, 3), "1.000");
  EXPECT_EQ(ToFixed(-0.5, 1), "-0.5");
}

TEST(StringUtilTest, IsLowercaseAlpha) {
  EXPECT_TRUE(IsLowercaseAlpha("abcz"));
  EXPECT_TRUE(IsLowercaseAlpha(""));
  EXPECT_FALSE(IsLowercaseAlpha("abcZ"));
  EXPECT_FALSE(IsLowercaseAlpha("ab1"));
  EXPECT_FALSE(IsLowercaseAlpha("a b"));
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 32 && !any_diff; ++i) {
    any_diff = a.UniformInt(0, 1 << 30) != b.UniformInt(0, 1 << 30);
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(RngTest, UniformIndexCoversAllBuckets) {
  Rng rng(11);
  std::set<size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.UniformIndex(4));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliRateIsRoughlyHonored) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.2) ? 1 : 0;
  double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.2, 0.02);
}

TEST(RngTest, WeightedIndexRespectsZeroWeights) {
  Rng rng(5);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.WeightedIndex(w), 1u);
}

TEST(RngTest, WeightedIndexApproximatesWeights) {
  Rng rng(5);
  std::vector<double> w = {1.0, 3.0};
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ones += rng.WeightedIndex(w) == 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(RngTest, LowercaseLetterRange) {
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    char c = rng.LowercaseLetter();
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    EXPECT_GT(rng.LogNormal(4.0, 0.5), 0.0);
  }
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(77);
  Rng child = parent.Fork();
  // The child stream must be deterministic given the parent seed.
  Rng parent2(77);
  Rng child2 = parent2.Fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(child.UniformInt(0, 1 << 20), child2.UniformInt(0, 1 << 20));
  }
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(21);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.Shuffle(v.begin(), v.end());
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// -------------------------------------------------------------- Stopwatch

TEST(StopwatchTest, ElapsedIsNonNegativeAndMonotonic) {
  Stopwatch w;
  double a = w.ElapsedSeconds();
  double b = w.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  EXPECT_GE(w.ElapsedMillis(), 0.0);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch w;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  w.Restart();
  EXPECT_LT(w.ElapsedSeconds(), 1.0);
}

// ------------------------------------------------------------------ Span

TEST(SpanTest, ViewsVectorWithoutCopy) {
  std::vector<uint32_t> v = {3, 1, 4, 1, 5};
  Span<const uint32_t> s = v;
  EXPECT_EQ(s.size(), v.size());
  EXPECT_EQ(s.data(), v.data());  // a view, not a copy
  EXPECT_EQ(s.front(), 3u);
  EXPECT_EQ(s.back(), 5u);
  EXPECT_EQ(s[2], 4u);
}

TEST(SpanTest, EmptyAndDefault) {
  Span<const uint32_t> s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.begin(), s.end());
  std::vector<uint32_t> empty;
  Span<const uint32_t> e = empty;
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(s, e);
}

TEST(SpanTest, ComparesOrderedAgainstSpansAndVectors) {
  std::vector<uint32_t> v = {1, 2, 3};
  Span<const uint32_t> s = v;
  EXPECT_EQ(s, (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_EQ((std::vector<uint32_t>{1, 2, 3}), s);
  EXPECT_NE(s, (std::vector<uint32_t>{1, 3, 2}));  // order matters
  EXPECT_NE(s, (std::vector<uint32_t>{1, 2}));
  std::vector<uint32_t> w = {1, 2, 3};
  EXPECT_EQ(s, Span<const uint32_t>(w));
}

TEST(SpanTest, SubspanAndToVector) {
  std::vector<uint32_t> v = {10, 20, 30, 40};
  Span<const uint32_t> s = v;
  Span<const uint32_t> mid = s.subspan(1, 2);
  EXPECT_EQ(mid, (std::vector<uint32_t>{20, 30}));
  EXPECT_EQ(mid.ToVector(), (std::vector<uint32_t>{20, 30}));
}

TEST(SpanTest, RangeForIteration) {
  std::vector<uint32_t> v = {2, 4, 6};
  uint32_t sum = 0;
  for (uint32_t x : Span<const uint32_t>(v)) sum += x;
  EXPECT_EQ(sum, 12u);
}

// --------------------------------------------------------- FlatHash64Map

TEST(FlatHash64MapTest, FindInsertRoundTrip) {
  FlatHash64Map<uint32_t> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(42), nullptr);  // empty table: no probe, no crash
  for (uint64_t k = 0; k < 1000; ++k) map.Insert(k * 977, uint32_t(k));
  EXPECT_EQ(map.size(), 1000u);
  for (uint64_t k = 0; k < 1000; ++k) {
    uint32_t* v = map.Find(k * 977);
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(*v, uint32_t(k));
  }
  EXPECT_EQ(map.Find(1), nullptr);
  EXPECT_EQ(map.Find(FlatHash64Map<uint32_t>::kEmptyKey - 1), nullptr);
}

TEST(FlatHash64MapTest, SurvivesGrowthAcrossAdversarialKeys) {
  // Sequential keys land in clustered slots pre-mix; the finalizer plus
  // growth rehashing must keep every mapping intact.
  FlatHash64Map<double> map;
  for (uint64_t k = 0; k < 5000; ++k) map.Insert(k, k * 0.5);
  for (uint64_t k = 0; k < 5000; ++k) {
    double* v = map.Find(k);
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(*v, k * 0.5);
  }
}

TEST(FlatHash64MapTest, ClearReleasesAllStorage) {
  FlatHash64Map<uint32_t> map;
  for (uint64_t k = 0; k < 100; ++k) map.Insert(k + 7, uint32_t(k));
  EXPECT_GT(map.MemoryBytes(), 0u);
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.MemoryBytes(), 0u);
  EXPECT_EQ(map.Find(7), nullptr);
  map.Insert(7, 9);  // usable again after Clear
  ASSERT_NE(map.Find(7), nullptr);
  EXPECT_EQ(*map.Find(7), 9u);
}

// --------------------------------------------------------- DynamicBitset

TEST(DynamicBitsetTest, SetTestResetAcrossWordBoundaries) {
  DynamicBitset b(200);
  EXPECT_EQ(b.size(), 200u);
  for (size_t i : {0u, 63u, 64u, 127u, 128u, 199u}) {
    EXPECT_FALSE(b.Test(i));
    b.Set(i);
    EXPECT_TRUE(b.Test(i));
  }
  EXPECT_EQ(b.Count(), 6u);
  b.Reset(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 5u);
}

TEST(DynamicBitsetTest, TestAndSetReportsFirstSetOnly) {
  DynamicBitset b(70);
  EXPECT_TRUE(b.TestAndSet(69));   // was clear
  EXPECT_FALSE(b.TestAndSet(69));  // already set
  EXPECT_EQ(b.Count(), 1u);
}

TEST(DynamicBitsetTest, OrWithCountReturnsNewlySetBits) {
  DynamicBitset a(130), b(130);
  a.Set(1);
  a.Set(65);
  b.Set(65);
  b.Set(129);
  EXPECT_EQ(a.OrWithCount(b), 1u);  // only bit 129 is new
  EXPECT_EQ(a.Count(), 3u);
  EXPECT_EQ(a.OrWithCount(b), 0u);  // idempotent
}

TEST(DynamicBitsetTest, IntersectsDetectsSharedBits) {
  DynamicBitset a(100), b(100);
  a.Set(70);
  b.Set(71);
  EXPECT_FALSE(a.Intersects(b));
  b.Set(70);
  EXPECT_TRUE(a.Intersects(b));
}

TEST(DynamicBitsetTest, AssignFillsAndClearsTail) {
  DynamicBitset b;
  b.Assign(70, true);
  // All 70 logical bits set; the 58 tail bits of the last word must not
  // leak into Count().
  EXPECT_EQ(b.Count(), 70u);
  b.Assign(70, false);
  EXPECT_EQ(b.Count(), 0u);
}

TEST(DynamicBitsetTest, ResizePreservesAndClearsNewBits) {
  DynamicBitset b(10);
  b.Set(9);
  b.Resize(300);
  EXPECT_TRUE(b.Test(9));
  for (size_t i = 10; i < 300; ++i) EXPECT_FALSE(b.Test(i));
  EXPECT_GE(b.MemoryBytes(), DynamicBitset::WordCount(300) * 8);
}

// -------------------------------------------------------------- resource

TEST(ResourceTest, RssMeasurementsArePlausible) {
  size_t peak = PeakRssBytes();
  size_t current = CurrentRssBytes();
  // Both available on Linux; a running gtest binary occupies at least 1 MB.
  EXPECT_GT(peak, 1u << 20);
  EXPECT_GT(current, 1u << 20);
  EXPECT_GE(peak, current / 2);  // peak is a high-water mark (coarse check)
}

}  // namespace
}  // namespace idrepair
