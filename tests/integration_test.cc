#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "eval/metrics.h"
#include "gen/real_like.h"
#include "gen/synthetic.h"
#include "graph/generators.h"
#include "repair/repairer.h"

namespace idrepair {
namespace {

// Multiset of (loc, ts) records, for conservation checks.
std::multiset<std::pair<LocationId, Timestamp>> RecordMultiset(
    const TrajectorySet& set) {
  std::multiset<std::pair<LocationId, Timestamp>> out;
  for (const auto& t : set.trajectories()) {
    for (const auto& p : t.points()) out.emplace(p.loc, p.ts);
  }
  return out;
}

struct PipelineCase {
  const char* name;
  size_t num_trajectories;
  double error_rate;
  double missing_rate;
  uint64_t seed;
};

class PipelineInvariantTest : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineInvariantTest, CoreInvariantsHold) {
  const PipelineCase& pc = GetParam();
  TransitionGraph graph = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = pc.num_trajectories;
  config.record_error_rate = pc.error_rate;
  config.record_missing_rate = pc.missing_rate;
  config.max_path_len = 4;
  config.seed = pc.seed;
  auto ds = GenerateSyntheticDataset(graph, config);
  ASSERT_TRUE(ds.ok());
  TrajectorySet set = ds->BuildObservedTrajectories();

  RepairOptions options;
  options.theta = 4;
  options.eta = 600;
  IdRepairer repairer(graph, options);
  auto result = repairer.Repair(set);
  ASSERT_TRUE(result.ok());

  // 1. Records are conserved: repair rewrites IDs, never loses a record.
  EXPECT_EQ(RecordMultiset(result->repaired), RecordMultiset(set));

  // 2. The selected repairs are pairwise compatible.
  std::set<TrajIndex> used;
  for (RepairIndex r : result->selected) {
    for (TrajIndex m : result->candidates.members(r)) {
      EXPECT_TRUE(used.insert(m).second);
    }
  }

  // 3. Every selected repair's join is a valid trajectory.
  auto repaired_idx = result->repaired.BuildIdIndex();
  for (RepairIndex r : result->selected) {
    auto it = repaired_idx.find(result->candidates.target_id(r));
    ASSERT_NE(it, repaired_idx.end());
    EXPECT_TRUE(result->repaired.at(it->second).IsValid(graph));
  }

  // 4. The number of invalid trajectories never increases.
  size_t invalid_before = set.InvalidTrajectories(graph).size();
  size_t invalid_after = result->repaired.InvalidTrajectories(graph).size();
  EXPECT_LE(invalid_after, invalid_before);

  // 5. Rewrites only ever assign IDs that exist in the dataset (repairs
  //    never invent values — §1.2).
  std::set<std::string> existing;
  for (const auto& t : set.trajectories()) existing.insert(t.id());
  for (const auto& [traj, id] : result->rewrites) {
    EXPECT_TRUE(existing.count(id) > 0) << id;
  }

  // 6. Candidate bookkeeping is internally consistent.
  const CandidateSet& cands = result->candidates;
  for (size_t r = 0; r < cands.size(); ++r) {
    auto members = cands.members(r);
    auto invalid = cands.invalid_members(r);
    EXPECT_FALSE(members.empty());
    EXPECT_FALSE(invalid.empty());
    EXPECT_TRUE(std::includes(members.begin(), members.end(),
                              invalid.begin(), invalid.end()));
    EXPECT_GE(cands.similarity(r), 0.0);
    EXPECT_LE(cands.similarity(r), 1.0);
    EXPECT_GE(cands.rarity(r), 1u);
    EXPECT_GE(cands.effectiveness(r), 0.0);
    size_t total_records = 0;
    for (TrajIndex m : members) total_records += set.at(m).size();
    EXPECT_LE(total_records, options.theta);
    EXPECT_LE(members.size(), options.zeta);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, PipelineInvariantTest,
    ::testing::Values(
        PipelineCase{"small_low_error", 100, 0.05, 0.0, 1},
        PipelineCase{"small_default", 150, 0.2, 0.0, 2},
        PipelineCase{"medium_default", 400, 0.2, 0.0, 3},
        PipelineCase{"high_error", 200, 0.4, 0.0, 4},
        PipelineCase{"with_missing", 200, 0.2, 0.1, 5},
        PipelineCase{"heavy_missing", 200, 0.2, 0.3, 6},
        PipelineCase{"error_free", 150, 0.0, 0.0, 7},
        PipelineCase{"dense_window", 600, 0.2, 0.0, 8}),
    [](const ::testing::TestParamInfo<PipelineCase>& info) {
      return info.param.name;
    });

// Quality responds to error rate the way Fig 12 shows.
TEST(PipelineTrendTest, FMeasureDegradesWithErrorRate) {
  TransitionGraph graph = MakeRealLikeGraph();
  RepairOptions options;
  options.theta = 4;
  options.eta = 600;
  std::vector<double> f_by_rate;
  for (double rate : {0.05, 0.30}) {
    double f_sum = 0.0;
    for (uint64_t seed : {11u, 12u, 13u}) {
      SyntheticConfig config;
      config.num_trajectories = 300;
      config.record_error_rate = rate;
      config.max_path_len = 4;
      config.seed = seed;
      auto ds = GenerateSyntheticDataset(graph, config);
      ASSERT_TRUE(ds.ok());
      TrajectorySet set = ds->BuildObservedTrajectories();
      IdRepairer repairer(graph, options);
      auto result = repairer.Repair(set);
      ASSERT_TRUE(result.ok());
      auto truth = ComputeFragmentTruth(*ds, set);
      f_sum += EvaluateRewrites(truth, set, result->rewrites).f_measure;
    }
    f_by_rate.push_back(f_sum / 3.0);
  }
  EXPECT_GT(f_by_rate[0], f_by_rate[1]);
}

// Larger chain graphs are harder to reassemble (Fig 11(a) trend). Short
// legs (20–60 s medians) keep full chain traversals within η=600 as in the
// paper's synthetic setup.
TEST(PipelineTrendTest, LongerChainsReduceFMeasure) {
  auto run = [&](size_t chain_len) {
    RepairOptions options;
    options.theta = chain_len;
    options.eta = 600;
    TransitionGraph graph = MakeChainGraph(chain_len);
    double f_sum = 0.0;
    for (uint64_t seed : {21u, 22u}) {
      SyntheticConfig config;
      config.num_trajectories = 120;
      config.max_path_len = chain_len;
      config.window_seconds = 4 * 3600;
      config.travel_median_lo = 20;
      config.travel_median_hi = 60;
      config.seed = seed;
      auto ds = GenerateSyntheticDataset(graph, config);
      EXPECT_TRUE(ds.ok());
      TrajectorySet set = ds->BuildObservedTrajectories();
      IdRepairer repairer(graph, options);
      auto result = repairer.Repair(set);
      EXPECT_TRUE(result.ok());
      auto truth = ComputeFragmentTruth(*ds, set);
      f_sum += EvaluateRewrites(truth, set, result->rewrites).f_measure;
    }
    return f_sum / 2.0;
  };
  EXPECT_GT(run(4), run(8));
}

// End-to-end over the grid road network (the "California-like" substrate).
TEST(PipelineTest, WorksOnGridNetworks) {
  TransitionGraph graph = MakeGridNetwork(3, 4);
  SyntheticConfig config;
  config.num_trajectories = 200;
  config.max_path_len = 6;
  config.seed = 31;
  auto ds = GenerateSyntheticDataset(graph, config);
  ASSERT_TRUE(ds.ok());
  TrajectorySet set = ds->BuildObservedTrajectories();
  RepairOptions options;
  options.theta = 6;
  options.eta = 1200;
  IdRepairer repairer(graph, options);
  auto result = repairer.Repair(set);
  ASSERT_TRUE(result.ok());
  auto truth = ComputeFragmentTruth(*ds, set);
  auto metrics = EvaluateRewrites(truth, set, result->rewrites);
  EXPECT_GT(metrics.f_measure, 0.3);
  EXPECT_EQ(RecordMultiset(result->repaired), RecordMultiset(set));
}

// The selection algorithms order as in Fig 15: exact >= EMAX in Ω, and
// EMAX well above DMAX.
TEST(PipelineTest, SelectionAlgorithmOrdering) {
  // A small, *sparse* dataset (full one-hour window for only 60 entities):
  // the exact weighted-independent-set solver needs modest Gr components,
  // exactly like the paper's <=100-trajectory datasets in §6.5.1.
  TransitionGraph graph = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 60;
  config.max_path_len = 4;
  config.window_seconds = 3600;
  config.seed = 41;
  auto ds = GenerateSyntheticDataset(graph, config);
  ASSERT_TRUE(ds.ok());
  TrajectorySet set = ds->BuildObservedTrajectories();
  RepairOptions options;
  options.theta = 4;
  options.eta = 600;
  IdRepairer repairer(ds->graph, options);

  auto omega_for = [&](SelectionAlgorithm alg) {
    RepairOptions o = options;
    o.selection = alg;
    IdRepairer r(ds->graph, o);
    auto result = r.Repair(set);
    EXPECT_TRUE(result.ok());
    return result->total_effectiveness;
  };
  double exact = omega_for(SelectionAlgorithm::kExact);
  double emax = omega_for(SelectionAlgorithm::kEmax);
  double dmax = omega_for(SelectionAlgorithm::kDmax);
  EXPECT_GE(exact, emax - 1e-9);
  EXPECT_GE(exact, dmax - 1e-9);
  EXPECT_GE(emax / exact, 0.9);  // the paper reports ≥ 0.95 on average
}

}  // namespace
}  // namespace idrepair
