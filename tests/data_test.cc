// Golden-file test: the shipped sample data (data/) must load and repair
// to the paper's documented outcome, guarding the CLI workflow in
// data/README.md.

#include <gtest/gtest.h>

#include <string>

#include "graph/serialization.h"
#include "repair/repairer.h"
#include "traj/csv.h"

namespace idrepair {
namespace {

std::string DataPath(const std::string& name) {
  return std::string(IDREPAIR_SOURCE_DIR) + "/data/" + name;
}

TEST(SampleDataTest, GraphFileMatchesFigure1b) {
  auto graph = ReadTransitionGraphFile(DataPath("paper_example_graph.txt"));
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_EQ(graph->num_locations(), 5u);
  EXPECT_EQ(graph->num_edges(), 5u);
  EXPECT_EQ(graph->entrances().size(), 2u);
  EXPECT_EQ(graph->exits().size(), 1u);
  EXPECT_TRUE(graph->HasEdge(*graph->FindLocation("D"),
                             *graph->FindLocation("E")));
}

TEST(SampleDataTest, RecordsFileMatchesTable1) {
  auto graph = ReadTransitionGraphFile(DataPath("paper_example_graph.txt"));
  ASSERT_TRUE(graph.ok());
  auto records =
      ReadRecordsCsvFile(DataPath("paper_example_records.csv"), *graph);
  ASSERT_TRUE(records.ok()) << records.status();
  EXPECT_EQ(records->size(), 7u);
  EXPECT_EQ((*records)[0].id, "GL21348");
  EXPECT_EQ((*records)[0].ts, 29350);  // 08:09:10
}

TEST(SampleDataTest, CliWorkflowRepairsTheExample) {
  auto graph = ReadTransitionGraphFile(DataPath("paper_example_graph.txt"));
  ASSERT_TRUE(graph.ok());
  auto records =
      ReadRecordsCsvFile(DataPath("paper_example_records.csv"), *graph);
  ASSERT_TRUE(records.ok());
  TrajectorySet set = TrajectorySet::FromRecords(*records);
  RepairOptions options;  // the flags documented in data/README.md
  options.theta = 5;
  options.eta = 1200;
  IdRepairer repairer(*graph, options);
  auto result = repairer.Repair(set);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rewrites.size(), 1u);
  EXPECT_EQ(result->rewrites.begin()->second, "GL83248");
}

}  // namespace
}  // namespace idrepair
