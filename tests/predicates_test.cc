#include <gtest/gtest.h>

#include "graph/generators.h"
#include "repair/predicates.h"
#include "test_util.h"
#include "traj/merge.h"

namespace idrepair {
namespace {

using testutil::MakeTable2Trajectories;
using testutil::RunningExampleOptions;

class RunningExampleFixture : public ::testing::Test {
 protected:
  RunningExampleFixture()
      : graph_(MakePaperExampleGraph()),
        set_(MakeTable2Trajectories()),
        pred_(graph_, RunningExampleOptions().theta,
              RunningExampleOptions().eta) {}

  const Trajectory& T1() const { return set_.at(0); }  // GL21348<A B D E>
  const Trajectory& T2() const { return set_.at(1); }  // GL03245<C>
  const Trajectory& T3() const { return set_.at(2); }  // GL83248<D E>

  TransitionGraph graph_;
  TrajectorySet set_;
  PredicateEvaluator pred_;
};

// ------------------------------------------------------- InternallyFeasible

TEST_F(RunningExampleFixture, AllTableTrajectoriesAreInternallyFeasible) {
  EXPECT_TRUE(pred_.InternallyFeasible(T1()));
  EXPECT_TRUE(pred_.InternallyFeasible(T2()));
  EXPECT_TRUE(pred_.InternallyFeasible(T3()));
}

TEST_F(RunningExampleFixture, OverlongTrajectoryIsInfeasible) {
  Trajectory t("x", {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 6}});
  EXPECT_FALSE(pred_.InternallyFeasible(t));  // 6 records > θ=5
}

TEST_F(RunningExampleFixture, OverlongSpanIsInfeasible) {
  Trajectory t("x", {{0, 0}, {1, 5000}});  // span > η=1200
  EXPECT_FALSE(pred_.InternallyFeasible(t));
}

TEST_F(RunningExampleFixture, UnreachableConsecutiveLocationsInfeasible) {
  Trajectory t("x", {{4, 1}, {0, 2}});  // E -> A unreachable
  EXPECT_FALSE(pred_.InternallyFeasible(t));
}

TEST_F(RunningExampleFixture, DuplicateTimestampsInfeasible) {
  Trajectory t("x", {{0, 1}, {1, 1}});
  EXPECT_FALSE(pred_.InternallyFeasible(t));
}

TEST_F(RunningExampleFixture, EmptyTrajectoryInfeasible) {
  EXPECT_FALSE(pred_.InternallyFeasible(Trajectory()));
}

// -------------------------------------------------------------------- cex

TEST_F(RunningExampleFixture, CexMatchesExample31) {
  // Example 3.1: edges (v1,v2) and (v2,v3) only.
  EXPECT_TRUE(pred_.Cex(T1(), T2()));
  EXPECT_TRUE(pred_.Cex(T2(), T3()));
  EXPECT_FALSE(pred_.Cex(T1(), T3()));
}

TEST_F(RunningExampleFixture, CexIsSymmetric) {
  EXPECT_EQ(pred_.Cex(T1(), T2()), pred_.Cex(T2(), T1()));
  EXPECT_EQ(pred_.Cex(T1(), T3()), pred_.Cex(T3(), T1()));
  EXPECT_EQ(pred_.Cex(T2(), T3()), pred_.Cex(T3(), T2()));
}

TEST_F(RunningExampleFixture, CexRejectsLengthBound) {
  PredicateEvaluator tight(graph_, /*theta=*/4, /*eta=*/1200);
  // |T1| + |T2| = 5 > 4.
  EXPECT_FALSE(tight.Cex(T1(), T2()));
  // |T2| + |T3| = 3 <= 4 still fine.
  EXPECT_TRUE(tight.Cex(T2(), T3()));
}

TEST_F(RunningExampleFixture, CexRejectsTimeSpanBound) {
  PredicateEvaluator tight(graph_, /*theta=*/5, /*eta=*/200);
  // T2 (08:17:23) to T3 end (08:21:30) spans 247 s > 200.
  EXPECT_FALSE(tight.Cex(T2(), T3()));
}

TEST_F(RunningExampleFixture, CexRejectsEqualCrossTimestamps) {
  Trajectory a("a", {{2, 100}});
  Trajectory b("b", {{3, 100}});
  EXPECT_FALSE(pred_.Cex(a, b));
}

TEST_F(RunningExampleFixture, CexAllowsGapsFilledByThirdTrajectory) {
  // A@0 followed by D@300: not adjacent, but reachable via B (2 hops).
  Trajectory a("a", {{0, 0}});
  Trajectory b("b", {{3, 300}, {4, 400}});
  EXPECT_TRUE(pred_.Cex(a, b));
}

TEST(CexCycleTest, SameLocationTwiceRequiresACycle) {
  // Acyclic graph: two records at B can never lie on one path.
  TransitionGraph acyclic = MakePaperExampleGraph();
  PredicateEvaluator pred(acyclic, 5, 1000);
  Trajectory a("a", {{1, 100}});
  Trajectory b("b", {{1, 200}});
  EXPECT_FALSE(pred.Cex(a, b));

  // Add a cycle B -> C -> B: now a revisit is possible.
  TransitionGraph cyclic = MakePaperExampleGraph();
  ASSERT_TRUE(cyclic.AddEdge(2, 1).ok());
  PredicateEvaluator pred2(cyclic, 5, 1000);
  EXPECT_TRUE(pred2.Cex(a, b));
}

// -------------------------------------------------------------------- jnb

TEST_F(RunningExampleFixture, JnbMatchesExample33) {
  // Joinable subsets: {T1}, {T1,T2}, {T2,T3} — and not {T2}, {T3}.
  const Trajectory* t1[] = {&T1()};
  const Trajectory* t2[] = {&T2()};
  const Trajectory* t3[] = {&T3()};
  const Trajectory* t12[] = {&T1(), &T2()};
  const Trajectory* t23[] = {&T2(), &T3()};
  EXPECT_TRUE(pred_.Jnb(t1));
  EXPECT_FALSE(pred_.Jnb(t2));
  EXPECT_FALSE(pred_.Jnb(t3));
  EXPECT_TRUE(pred_.Jnb(t12));
  EXPECT_TRUE(pred_.Jnb(t23));
}

TEST_F(RunningExampleFixture, JnbRequiresEdgesNotJustReachability) {
  // A@0 then D@300: reachable but not adjacent, and nothing fills the gap.
  Trajectory a("a", {{0, 0}});
  Trajectory b("b", {{3, 300}, {4, 400}});
  const Trajectory* group[] = {&a, &b};
  EXPECT_TRUE(pred_.Cex(a, b));
  EXPECT_FALSE(pred_.Jnb(group));
}

TEST_F(RunningExampleFixture, JnbRejectsEmptyAndOversized) {
  EXPECT_FALSE(pred_.Jnb({}));
  PredicateEvaluator tight(graph_, /*theta=*/2, /*eta=*/1200);
  const Trajectory* t23[] = {&T2(), &T3()};
  EXPECT_FALSE(tight.Jnb(t23));  // 3 records > θ=2
}

TEST_F(RunningExampleFixture, JnbChecksEntranceAndExit) {
  Trajectory bd("x", {{1, 1}, {3, 2}});  // B -> D: neither endpoint special
  const Trajectory* group[] = {&bd};
  EXPECT_FALSE(pred_.Jnb(group));
}

TEST_F(RunningExampleFixture, JnbMergedVariantAgrees) {
  const Trajectory* t23[] = {&T2(), &T3()};
  auto merged = MergeChronological(t23);
  EXPECT_TRUE(pred_.JnbMerged(merged));
}

TEST_F(RunningExampleFixture, JnbRejectsTimestampTies) {
  Trajectory a("a", {{2, 100}});
  Trajectory b("b", {{3, 100}, {4, 200}});
  const Trajectory* group[] = {&a, &b};
  EXPECT_FALSE(pred_.Jnb(group));
}

// -------------------------------------------------------------------- pck

TEST_F(RunningExampleFixture, PckSingletonRequiresEntranceStart) {
  const Trajectory* t1[] = {&T1()};
  const Trajectory* t2[] = {&T2()};
  const Trajectory* t3[] = {&T3()};
  EXPECT_TRUE(pred_.Pck(t1));   // starts at A
  EXPECT_TRUE(pred_.Pck(t2));   // starts at C
  EXPECT_FALSE(pred_.Pck(t3));  // starts at D — never first in a subset
}

TEST_F(RunningExampleFixture, PckOnRunningExamplePairs) {
  const Trajectory* t12[] = {&T1(), &T2()};
  const Trajectory* t23[] = {&T2(), &T3()};
  EXPECT_TRUE(pred_.Pck(t12));  // MCP = A,B,C — prefix of ABCDE
  EXPECT_TRUE(pred_.Pck(t23));  // MCP = C,D — prefix of CDE
}

TEST_F(RunningExampleFixture, PckRequiresEdgeWithinPrefix) {
  // MCP = A@0, D@10 (both sources covered): A->D is not an edge.
  Trajectory a("a", {{0, 0}, {4, 400}});
  Trajectory b("b", {{3, 10}});
  const Trajectory* group[] = {&a, &b};
  EXPECT_FALSE(pred_.Pck(group));
}

TEST_F(RunningExampleFixture, PckIgnoresViolationsAfterThePrefix) {
  // MCP = A@0, B@10 (covers both); the later D@20,D@400 clash is beyond the
  // prefix and must not affect pck (jnb will catch it later).
  Trajectory a("a", {{0, 0}, {3, 400}});
  Trajectory b("b", {{1, 10}, {3, 20}});
  const Trajectory* group[] = {&a, &b};
  EXPECT_TRUE(pred_.Pck(group));
}

TEST_F(RunningExampleFixture, PckRequiresExitReachableFromPrefixEnd) {
  TransitionGraph g;
  LocationId a = g.AddLocation("A");
  LocationId dead = g.AddLocation("dead");
  LocationId exit = g.AddLocation("X");
  ASSERT_TRUE(g.AddEdge(a, dead).ok());
  ASSERT_TRUE(g.AddEdge(a, exit).ok());
  ASSERT_TRUE(g.MarkEntrance(a).ok());
  ASSERT_TRUE(g.MarkExit(exit).ok());
  PredicateEvaluator pred(g, 5, 1000);
  // The MCP of a pair extends to the later trajectory's first record, so
  // the dead-end is inside the checked prefix. (For a singleton the MCP is
  // just its first record — the rest is checked as the clique grows.)
  Trajectory t1("t1", {{a, 0}});
  Trajectory t2("t2", {{dead, 10}});
  const Trajectory* group[] = {&t1, &t2};
  EXPECT_FALSE(pred.Pck(group));
  Trajectory single("s", {{a, 0}, {dead, 10}});
  const Trajectory* singleton[] = {&single};
  EXPECT_TRUE(pred.Pck(singleton));  // MCP = first record only
}

TEST_F(RunningExampleFixture, PckRejectsTimestampTiesInPrefix) {
  Trajectory a("a", {{0, 0}});
  Trajectory b("b", {{1, 0}});
  const Trajectory* group[] = {&a, &b};
  EXPECT_FALSE(pred_.Pck(group));
}

// The predicates also behave on a larger planar road network.
TEST(GridPredicatesTest, CexAndJnbOnGridNetwork) {
  TransitionGraph g = MakeGridNetwork(3, 4);
  PredicateEvaluator pred(g, /*theta=*/7, /*eta=*/2000);
  // A west-to-east traversal split into two fragments.
  LocationId x0y0 = *g.FindLocation("x0y0");
  LocationId x0y1 = *g.FindLocation("x0y1");
  LocationId x0y2 = *g.FindLocation("x0y2");
  LocationId x0y3 = *g.FindLocation("x0y3");
  Trajectory front("f", {{x0y0, 0}, {x0y1, 100}});
  Trajectory back("b", {{x0y2, 200}, {x0y3, 300}});
  EXPECT_TRUE(pred.Cex(front, back));
  const Trajectory* pair[] = {&front, &back};
  EXPECT_TRUE(pred.Jnb(pair));
  // Going backwards (east to west) is impossible on this one-way grid.
  Trajectory reversed("r", {{x0y3, 0}, {x0y2, 100}});
  EXPECT_FALSE(pred.InternallyFeasible(reversed));
}

TEST(GridPredicatesTest, CrossRowFragmentsRequireAConnectingPath) {
  TransitionGraph g = MakeGridNetwork(3, 4);
  PredicateEvaluator pred(g, 7, 2000);
  // Row 2 cannot reach row 0 (only downward edges exist).
  Trajectory low("l", {{*g.FindLocation("x2y0"), 0}});
  Trajectory high("h", {{*g.FindLocation("x0y1"), 100}});
  EXPECT_FALSE(pred.Cex(low, high));
  // The reverse temporal order works: row 0 reaches row 2 going down.
  Trajectory high_first("hf", {{*g.FindLocation("x0y0"), 0}});
  Trajectory low_later("ll", {{*g.FindLocation("x2y1"), 300}});
  EXPECT_TRUE(pred.Cex(high_first, low_later));
}

// pck is necessary for jnb: every joinable subset passes pck.
TEST_F(RunningExampleFixture, PckIsNecessaryForJnb) {
  const Trajectory* groups[][2] = {
      {&T1(), &T2()}, {&T2(), &T3()}, {&T1(), &T3()}};
  for (auto& g : groups) {
    std::span<const Trajectory* const> span(g, 2);
    if (pred_.Jnb(span)) {
      EXPECT_TRUE(pred_.Pck(span));
    }
  }
}

}  // namespace
}  // namespace idrepair
