#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"
#include "graph/serialization.h"

namespace idrepair {
namespace {

TEST(GraphSerializationTest, RoundTripsPaperGraph) {
  TransitionGraph g = MakePaperExampleGraph();
  std::ostringstream out;
  ASSERT_TRUE(WriteTransitionGraph(out, g).ok());
  std::istringstream in(out.str());
  auto read = ReadTransitionGraph(in);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->num_locations(), g.num_locations());
  EXPECT_EQ(read->num_edges(), g.num_edges());
  EXPECT_EQ(read->entrances(), g.entrances());
  EXPECT_EQ(read->exits(), g.exits());
  for (LocationId u = 0; u < g.num_locations(); ++u) {
    EXPECT_EQ(read->LocationName(u), g.LocationName(u));
    for (LocationId v = 0; v < g.num_locations(); ++v) {
      EXPECT_EQ(read->HasEdge(u, v), g.HasEdge(u, v));
    }
  }
}

TEST(GraphSerializationTest, RoundTripsGridNetwork) {
  TransitionGraph g = MakeGridNetwork(3, 4);
  std::ostringstream out;
  ASSERT_TRUE(WriteTransitionGraph(out, g).ok());
  std::istringstream in(out.str());
  auto read = ReadTransitionGraph(in);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->num_edges(), g.num_edges());
  EXPECT_EQ(read->entrances(), g.entrances());
}

TEST(GraphSerializationTest, SkipsCommentsAndBlankLines) {
  std::istringstream in(
      "# a road network\n"
      "\n"
      "location A\n"
      "location B\n"
      "  # indented comment\n"
      "edge A B\n"
      "entrance A\n"
      "exit B\n");
  auto g = ReadTransitionGraph(in);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_locations(), 2u);
  EXPECT_TRUE(g->HasEdge(0, 1));
}

TEST(GraphSerializationTest, RejectsUnknownDirective) {
  std::istringstream in("vertex A\n");
  auto g = ReadTransitionGraph(in);
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kCorruption);
}

TEST(GraphSerializationTest, RejectsUndeclaredLocations) {
  std::istringstream in("location A\nedge A B\n");
  EXPECT_FALSE(ReadTransitionGraph(in).ok());
  std::istringstream in2("location A\nentrance B\n");
  EXPECT_FALSE(ReadTransitionGraph(in2).ok());
}

TEST(GraphSerializationTest, RejectsWrongTokenCounts) {
  for (const char* text :
       {"location\n", "location A B\n", "edge A\n", "entrance\n"}) {
    std::istringstream in(text);
    EXPECT_FALSE(ReadTransitionGraph(in).ok()) << text;
  }
}

TEST(GraphSerializationTest, RejectsGraphWithoutEntranceOrExit) {
  std::istringstream in("location A\nlocation B\nedge A B\nentrance A\n");
  auto g = ReadTransitionGraph(in);
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphSerializationTest, MissingFileIsIoError) {
  auto g = ReadTransitionGraphFile("/nonexistent/graph.txt");
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
}

TEST(GraphSerializationTest, FileRoundTrip) {
  TransitionGraph g = MakeRealLikeGraph();
  std::string path = ::testing::TempDir() + "/idrepair_graph_test.txt";
  ASSERT_TRUE(WriteTransitionGraphFile(path, g).ok());
  auto read = ReadTransitionGraphFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->num_edges(), g.num_edges());
}

TEST(GraphSerializationTest, DotContainsAllVerticesAndEdges) {
  TransitionGraph g = MakePaperExampleGraph();
  std::string dot = ToDot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"A\" [shape=doublecircle]"), std::string::npos);
  EXPECT_NE(dot.find("\"E\" [shape=doubleoctagon]"), std::string::npos);
  EXPECT_NE(dot.find("\"B\" [shape=circle]"), std::string::npos);
  EXPECT_NE(dot.find("\"A\" -> \"B\""), std::string::npos);
  EXPECT_NE(dot.find("\"D\" -> \"E\""), std::string::npos);
}

}  // namespace
}  // namespace idrepair
