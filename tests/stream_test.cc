#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "gen/real_like.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "repair/repairer.h"
#include "stream/streaming_repairer.h"
#include "test_util.h"

namespace idrepair {
namespace {

using testutil::MakeTable1Records;
using testutil::RunningExampleOptions;

std::vector<TrackingRecord> SortedRecords(const Dataset& ds) {
  auto records = ds.ObservedRecords();
  std::sort(records.begin(), records.end(), RecordChronoLess);
  return records;
}

std::map<std::string, std::vector<LocationId>> AsMap(
    const std::vector<Trajectory>& trajs) {
  std::map<std::string, std::vector<LocationId>> out;
  for (const auto& t : trajs) {
    auto& seq = out[t.id()];
    for (const auto& p : t.points()) seq.push_back(p.loc);
  }
  return out;
}

TEST(StreamingRepairerTest, RejectsOutOfOrderRecords) {
  TransitionGraph graph = MakePaperExampleGraph();
  StreamingRepairer stream(graph, RunningExampleOptions());
  ASSERT_TRUE(stream.Append({"a", 0, 100}).ok());
  Status s = stream.Append({"b", 1, 50});
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(stream.pending_records(), 1u);
}

TEST(StreamingRepairerTest, RunningExampleThroughFinish) {
  TransitionGraph graph = MakePaperExampleGraph();
  StreamingRepairer stream(graph, RunningExampleOptions());
  auto records = MakeTable1Records();
  std::sort(records.begin(), records.end(), RecordChronoLess);
  for (const auto& r : records) ASSERT_TRUE(stream.Append(r).ok());
  auto emitted = stream.Finish();
  auto by_id = AsMap(emitted);
  ASSERT_EQ(by_id.size(), 2u);
  EXPECT_EQ(by_id.at("GL83248"), (std::vector<LocationId>{2, 3, 4}));
  EXPECT_EQ(by_id.at("GL21348"), (std::vector<LocationId>{0, 1, 3, 4}));
  EXPECT_EQ(stream.pending_records(), 0u);
}

TEST(StreamingRepairerTest, PollWithholdsOpenChains) {
  TransitionGraph graph = MakePaperExampleGraph();
  StreamingRepairer stream(graph, RunningExampleOptions());
  ASSERT_TRUE(stream.Append({"a", 0, 0}).ok());
  ASSERT_TRUE(stream.Append({"a", 1, 100}).ok());
  // Watermark is only 100: the fragment could still grow.
  EXPECT_TRUE(stream.Poll().empty());
  EXPECT_EQ(stream.pending_records(), 2u);
}

TEST(StreamingRepairerTest, PollFlushesAfterQuietGap) {
  TransitionGraph graph = MakePaperExampleGraph();
  RepairOptions options = RunningExampleOptions();  // η = 1200
  StreamingRepairer stream(graph, options);
  // A complete valid trajectory, then a long gap before new traffic.
  ASSERT_TRUE(stream.Append({"veh", 2, 0}).ok());
  ASSERT_TRUE(stream.Append({"veh", 3, 100}).ok());
  ASSERT_TRUE(stream.Append({"veh", 4, 200}).ok());
  ASSERT_TRUE(stream.Append({"next", 0, 10000}).ok());
  auto emitted = stream.Poll();
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].id(), "veh");
  EXPECT_EQ(stream.pending_records(), 1u);  // "next" still open
}

TEST(StreamingRepairerTest, ChainedFragmentsFlushTogether) {
  TransitionGraph graph = MakePaperExampleGraph();
  StreamingRepairer stream(graph, RunningExampleOptions());
  // The running example arrives, then silence long past η.
  auto records = MakeTable1Records();
  std::sort(records.begin(), records.end(), RecordChronoLess);
  for (const auto& r : records) ASSERT_TRUE(stream.Append(r).ok());
  ASSERT_TRUE(
      stream.Append({"later", 0, records.back().ts + 100000}).ok());
  auto emitted = stream.Poll();
  // All three fragments repaired together, exactly like the batch.
  auto by_id = AsMap(emitted);
  ASSERT_EQ(by_id.size(), 2u);
  EXPECT_EQ(by_id.at("GL83248"), (std::vector<LocationId>{2, 3, 4}));
}

TEST(StreamingRepairerTest, MatchesBatchOnRealLikeDataset) {
  auto ds = MakeScaledRealLikeDataset(400, 0.2, /*seed=*/9);
  ASSERT_TRUE(ds.ok());
  RepairOptions options;
  options.theta = 4;
  options.eta = 600;

  // Batch reference.
  TrajectorySet set = ds->BuildObservedTrajectories();
  IdRepairer repairer(ds->graph, options);
  auto batch = repairer.Repair(set);
  ASSERT_TRUE(batch.ok());

  // Stream with a generous horizon.
  StreamingRepairer stream(ds->graph, options, /*flush_horizon=*/4.0);
  std::vector<Trajectory> emitted;
  size_t count = 0;
  for (const auto& r : SortedRecords(*ds)) {
    ASSERT_TRUE(stream.Append(r).ok());
    if (++count % 50 == 0) {
      auto polled = stream.Poll();
      emitted.insert(emitted.end(), polled.begin(), polled.end());
    }
  }
  auto rest = stream.Finish();
  emitted.insert(emitted.end(), rest.begin(), rest.end());

  // Record conservation.
  size_t total = 0;
  for (const auto& t : emitted) total += t.size();
  EXPECT_EQ(total, ds->records.size());

  // Agreement with batch: compare the full multiset of (id, loc-seq).
  auto batch_map = AsMap(batch->repaired.trajectories());
  auto stream_map = AsMap(emitted);
  size_t agree = 0;
  for (const auto& [id, seq] : stream_map) {
    auto it = batch_map.find(id);
    if (it != batch_map.end() && it->second == seq) ++agree;
  }
  double agreement =
      static_cast<double>(agree) / static_cast<double>(batch_map.size());
  EXPECT_GT(agreement, 0.95) << "stream diverges from batch too much";
}

TEST(StreamingRepairerTest, EmittedCountAccumulates) {
  TransitionGraph graph = MakePaperExampleGraph();
  StreamingRepairer stream(graph, RunningExampleOptions());
  ASSERT_TRUE(stream.Append({"x", 2, 0}).ok());
  EXPECT_EQ(stream.emitted_trajectories(), 0u);
  stream.Finish();
  EXPECT_EQ(stream.emitted_trajectories(), 1u);
}

TEST(StreamingRepairerTest, ObsRecordsPollsAndLatency) {
  obs::MetricsRegistry::Global().Reset();
  obs::SetEnabled(true);
  TransitionGraph graph = MakePaperExampleGraph();
  StreamingRepairer stream(graph, RunningExampleOptions());
  ASSERT_TRUE(stream.Append({"veh", 2, 0}).ok());
  ASSERT_TRUE(stream.Append({"veh", 3, 100}).ok());
  ASSERT_TRUE(stream.Append({"next", 0, 100000}).ok());
  auto emitted = stream.Poll();
  obs::SetEnabled(false);

  uint64_t appends = 0;
  uint64_t polls = 0;
  uint64_t emitted_total = 0;
  uint64_t poll_latencies = 0;
  for (const auto& m : obs::MetricsRegistry::Global().Collect()) {
    if (m.name == "idrepair_stream_appends_total") {
      appends = m.counter_value;
    } else if (m.name == "idrepair_stream_polls_total") {
      polls = m.counter_value;
    } else if (m.name == "idrepair_stream_emitted_trajectories_total") {
      emitted_total = m.counter_value;
    } else if (m.name == "idrepair_stream_poll_seconds") {
      poll_latencies = m.total_count;
    }
  }
  EXPECT_EQ(appends, 3u);
  EXPECT_EQ(polls, 1u);
  EXPECT_EQ(poll_latencies, 1u);  // every poll observes its latency
  EXPECT_EQ(emitted_total, emitted.size());
}

TEST(StreamingRepairerTest, FinishOnEmptyStream) {
  TransitionGraph graph = MakePaperExampleGraph();
  StreamingRepairer stream(graph, RunningExampleOptions());
  EXPECT_TRUE(stream.Finish().empty());
  EXPECT_TRUE(stream.Poll().empty());
}

}  // namespace
}  // namespace idrepair
