#ifndef IDREPAIR_TESTS_TEST_UTIL_H_
#define IDREPAIR_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/id_similarity_repairer.h"
#include "baselines/neighborhood_repairer.h"
#include "graph/generators.h"
#include "graph/transition_graph.h"
#include "repair/options.h"
#include "repair/partitioned.h"
#include "repair/repairer.h"
#include "stream/streaming_repairer.h"
#include "traj/tracking_record.h"
#include "traj/trajectory_set.h"

namespace idrepair {
namespace testutil {

/// The stable names of every registered repair engine, in a fixed order the
/// differential and fuzz suites iterate over.
inline const std::vector<std::string_view>& AllEngineNames() {
  static const std::vector<std::string_view> kNames = {
      "core", "partitioned", "streaming", "idsim", "neighborhood"};
  return kNames;
}

/// Builds a repair engine by its stable name (the CLI's --engine values),
/// behind the unified Repairer interface. The graph must outlive the
/// engine; `options` is copied.
inline std::unique_ptr<Repairer> MakeEngineByName(
    std::string_view name, const TransitionGraph& graph,
    const RepairOptions& options) {
  if (name == "core") return std::make_unique<IdRepairer>(graph, options);
  if (name == "partitioned") {
    return std::make_unique<PartitionedRepairer>(graph, options);
  }
  if (name == "streaming") {
    return std::make_unique<StreamingRepairer>(graph, options);
  }
  if (name == "idsim") return std::make_unique<IdSimilarityRepairer>();
  if (name == "neighborhood") {
    return std::make_unique<NeighborhoodRepairer>(graph, options);
  }
  return nullptr;
}

/// Seconds since midnight for an HH:MM:SS clock reading.
constexpr Timestamp HMS(int h, int m, int s) {
  return static_cast<Timestamp>(h) * 3600 + m * 60 + s;
}

/// The seven tracking records of Table 1 of the paper, against the
/// Figure 1(b) graph (MakePaperExampleGraph, locations A=0..E=4).
inline std::vector<TrackingRecord> MakeTable1Records() {
  const LocationId A = 0, B = 1, C = 2, D = 3, E = 4;
  return {
      {"GL21348", A, HMS(8, 9, 10)},  {"GL21348", B, HMS(8, 13, 7)},
      {"GL03245", C, HMS(8, 17, 23)}, {"GL21348", D, HMS(8, 19, 13)},
      {"GL83248", D, HMS(8, 19, 40)}, {"GL21348", E, HMS(8, 21, 29)},
      {"GL83248", E, HMS(8, 21, 30)},
  };
}

/// The three trajectories of Table 2 (indices follow TrajectorySet start-time
/// order: 0 = GL21348, 1 = GL03245, 2 = GL83248).
inline TrajectorySet MakeTable2Trajectories() {
  return TrajectorySet::FromRecords(MakeTable1Records());
}

/// Repair options matching the running example: the Figure 1(b) valid paths
/// hold up to 5 records and the example trajectories span ~12 minutes, so
/// θ=5 and η=1200 s (the paper's real-dataset defaults θ=4/η=600 belong to
/// the 4-location Figure 9(b) graph).
inline RepairOptions RunningExampleOptions() {
  RepairOptions options;
  options.theta = 5;
  options.eta = 1200;
  options.zeta = 4;
  options.lambda = 0.5;
  return options;
}

}  // namespace testutil
}  // namespace idrepair

#endif  // IDREPAIR_TESTS_TEST_UTIL_H_
