#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "gen/synthetic.h"
#include "graph/generators.h"
#include "repair/cliques.h"
#include "test_util.h"

namespace idrepair {
namespace {

using testutil::MakeTable2Trajectories;
using testutil::RunningExampleOptions;

using Clique = std::vector<TrajIndex>;

std::set<Clique> EnumerateAll(const TrajectorySet& set,
                              const TransitionGraph& graph,
                              RepairOptions options,
                              CliqueEnumerator::Stats* stats = nullptr) {
  PredicateEvaluator pred(graph, options.theta, options.eta);
  TrajectoryGraph gm(set, pred, options);
  CliqueEnumerator enumerator(set, gm, pred, options);
  std::set<Clique> out;
  auto s = enumerator.Enumerate(
      [&](const Clique& c, const std::vector<MergedPoint>&) { out.insert(c); });
  if (stats != nullptr) *stats = s;
  return out;
}

TEST(CliqueTest, RunningExampleCliquesWithoutPruning) {
  TransitionGraph graph = MakePaperExampleGraph();
  TrajectorySet set = MakeTable2Trajectories();
  RepairOptions options = RunningExampleOptions();
  options.use_mcp_pruning = false;
  // Example 3.3: five cliques {v1},{v2},{v3},{v1,v2},{v2,v3}.
  std::set<Clique> expected = {{0}, {1}, {2}, {0, 1}, {1, 2}};
  EXPECT_EQ(EnumerateAll(set, graph, options), expected);
}

TEST(CliqueTest, McpPruningDropsOnlyNonJoinableCliques) {
  TransitionGraph graph = MakePaperExampleGraph();
  TrajectorySet set = MakeTable2Trajectories();
  RepairOptions options = RunningExampleOptions();
  options.use_mcp_pruning = true;
  CliqueEnumerator::Stats stats;
  auto got = EnumerateAll(set, graph, options, &stats);
  // Example 5.4 logic: {v3} fails the MCP condition (D is no entrance), so
  // it is pruned; everything else survives.
  std::set<Clique> expected = {{0}, {1}, {0, 1}, {1, 2}};
  EXPECT_EQ(got, expected);
  EXPECT_EQ(stats.pck_pruned, 1u);
}

TEST(CliqueTest, ZetaBoundsCliqueSize) {
  // A clique of 4 mutually compatible single-record trajectories.
  TransitionGraph graph = MakePaperExampleGraph();
  std::vector<TrackingRecord> records = {
      {"w", 0, 0}, {"x", 1, 100}, {"y", 3, 200}, {"z", 4, 300}};
  TrajectorySet set = TrajectorySet::FromRecords(records);
  RepairOptions options = RunningExampleOptions();
  options.use_mcp_pruning = false;

  options.zeta = 4;
  auto all = EnumerateAll(set, graph, options);
  // 4 singletons + 6 pairs + 4 triples + 1 quad = 15 (Figure 5 with n=4).
  EXPECT_EQ(all.size(), 15u);

  options.zeta = 2;
  auto capped = EnumerateAll(set, graph, options);
  EXPECT_EQ(capped.size(), 10u);  // singletons + pairs only
  for (const auto& c : capped) EXPECT_LE(c.size(), 2u);

  options.zeta = 1;
  auto singles = EnumerateAll(set, graph, options);
  EXPECT_EQ(singles.size(), 4u);
}

TEST(CliqueTest, ThetaBoundsTotalRecords) {
  TransitionGraph graph = MakePaperExampleGraph();
  // Two 2-record trajectories + one 1-record one, all compatible.
  std::vector<TrackingRecord> records = {
      {"w", 0, 0},   {"w", 1, 100},  // A,B
      {"x", 2, 200},                 // C
      {"y", 3, 300}, {"y", 4, 400},  // D,E
  };
  TrajectorySet set = TrajectorySet::FromRecords(records);
  RepairOptions options = RunningExampleOptions();
  options.use_mcp_pruning = false;
  options.theta = 4;  // the {w,x,y} triple holds 5 records: excluded
  auto cliques = EnumerateAll(set, graph, options);
  EXPECT_EQ(cliques.count({0, 1, 2}), 0u);
  EXPECT_EQ(cliques.count({0, 1}), 1u);   // 3 records
  EXPECT_EQ(cliques.count({1, 2}), 1u);   // 3 records
  for (const auto& c : cliques) {
    size_t total = 0;
    for (TrajIndex m : c) total += set.at(m).size();
    EXPECT_LE(total, options.theta);
  }
}

TEST(CliqueTest, MembersAreAscendingAndFormCliques) {
  TransitionGraph graph = MakeRealLikeGraph();
  std::vector<TrackingRecord> records = {
      {"a", 0, 0},   {"a", 1, 100},  // A,B
      {"b", 2, 200},                 // C
      {"c", 3, 300},                 // D
      {"d", 0, 350},                 // A (second wave)
      {"e", 1, 450},                 // B
  };
  TrajectorySet set = TrajectorySet::FromRecords(records);
  RepairOptions options;
  options.theta = 4;
  options.eta = 600;
  options.zeta = 4;
  options.use_mcp_pruning = false;
  PredicateEvaluator pred(graph, options.theta, options.eta);
  TrajectoryGraph gm(set, pred, options);
  CliqueEnumerator enumerator(set, gm, pred, options);
  enumerator.Enumerate([&](const Clique& c,
                           const std::vector<MergedPoint>& merged) {
    EXPECT_EQ(merged.size(), [&] {
      size_t total = 0;
      for (TrajIndex m : c) total += set.at(m).size();
      return total;
    }());
    for (size_t i = 0; i + 1 < merged.size(); ++i) {
      EXPECT_LE(merged[i].ts, merged[i + 1].ts);
    }
    EXPECT_TRUE(std::is_sorted(c.begin(), c.end()));
    for (size_t i = 0; i < c.size(); ++i) {
      for (size_t j = i + 1; j < c.size(); ++j) {
        EXPECT_TRUE(gm.HasEdge(c[i], c[j]))
            << "not a clique: " << c[i] << "," << c[j];
      }
    }
  });
}

TEST(CliqueTest, EachCliqueEmittedExactlyOnce) {
  TransitionGraph graph = MakeRealLikeGraph();
  std::vector<TrackingRecord> records = {
      {"a", 0, 0},  {"b", 1, 100}, {"c", 2, 200}, {"d", 3, 300}};
  TrajectorySet set = TrajectorySet::FromRecords(records);
  RepairOptions options;
  options.theta = 4;
  options.eta = 600;
  options.zeta = 4;
  options.use_mcp_pruning = false;
  PredicateEvaluator pred(graph, options.theta, options.eta);
  TrajectoryGraph gm(set, pred, options);
  CliqueEnumerator enumerator(set, gm, pred, options);
  std::vector<Clique> all;
  auto stats = enumerator.Enumerate(
      [&](const Clique& c, const std::vector<MergedPoint>&) {
        all.push_back(c);
      });
  std::set<Clique> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), all.size());
  EXPECT_EQ(stats.cliques_emitted, all.size());
}

TEST(CliqueTest, InfeasibleTrajectoriesAreSkippedEntirely) {
  TransitionGraph graph = MakePaperExampleGraph();
  std::vector<TrackingRecord> records = {
      {"ok", 0, 0},
      {"bad", 4, 100}, {"bad", 0, 200},  // E -> A unreachable: infeasible
  };
  TrajectorySet set = TrajectorySet::FromRecords(records);
  RepairOptions options = RunningExampleOptions();
  options.use_mcp_pruning = false;
  auto cliques = EnumerateAll(set, graph, options);
  auto idx = set.BuildIdIndex();
  for (const auto& c : cliques) {
    for (TrajIndex m : c) EXPECT_NE(m, idx.at("bad"));
  }
}

TEST(CliqueTest, PruningNeverLosesAJoinableSubset) {
  // Property: the joinable subsets derived from the pruned enumeration are
  // identical to those from the full enumeration (Theorem 5.3 soundness).
  TransitionGraph graph = MakeRealLikeGraph();
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    SyntheticConfig config;
    config.num_trajectories = 60;
    config.max_path_len = 4;
    config.seed = seed;
    auto ds = GenerateSyntheticDataset(graph, config);
    ASSERT_TRUE(ds.ok());
    TrajectorySet set = ds->BuildObservedTrajectories();
    RepairOptions options;
    options.theta = 4;
    options.eta = 600;
    options.zeta = 4;
    PredicateEvaluator pred(graph, options.theta, options.eta);

    auto joinable_from = [&](bool prune) {
      RepairOptions o = options;
      o.use_mcp_pruning = prune;
      std::set<Clique> joinable;
      TrajectoryGraph gm(set, pred, o);
      CliqueEnumerator enumerator(set, gm, pred, o);
      enumerator.Enumerate(
          [&](const Clique& c, const std::vector<MergedPoint>& merged) {
            if (pred.JnbMerged(merged)) joinable.insert(c);
          });
      return joinable;
    };

    auto with = joinable_from(true);
    auto without = joinable_from(false);
    EXPECT_EQ(with, without) << "seed " << seed;
  }
}

}  // namespace
}  // namespace idrepair
