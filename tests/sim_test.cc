#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/edit_distance.h"
#include "sim/similarity.h"

namespace idrepair {
namespace {

// ------------------------------------------------------------ EditDistance

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(EditDistance("abc", "abd"), 1u);
  EXPECT_EQ(EditDistance("abc", "acb"), 2u);
}

TEST(EditDistanceTest, PaperRunningExampleDistances) {
  // These drive the ω values of Example 3.4 / Figure 4(b).
  EXPECT_EQ(EditDistance("GL03245", "GL21348"), 4u);
  EXPECT_EQ(EditDistance("GL03245", "GL83248"), 2u);
}

TEST(EditDistanceTest, Symmetry) {
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    std::string a(rng.UniformIndex(9), 'a');
    std::string b(rng.UniformIndex(9), 'a');
    for (char& c : a) c = rng.LowercaseLetter();
    for (char& c : b) c = rng.LowercaseLetter();
    EXPECT_EQ(EditDistance(a, b), EditDistance(b, a));
  }
}

TEST(EditDistanceTest, TriangleInequality) {
  Rng rng(37);
  for (int i = 0; i < 200; ++i) {
    std::string s[3];
    for (auto& str : s) {
      str.assign(1 + rng.UniformIndex(8), 'a');
      for (char& c : str) c = rng.LowercaseLetter();
    }
    size_t ab = EditDistance(s[0], s[1]);
    size_t bc = EditDistance(s[1], s[2]);
    size_t ac = EditDistance(s[0], s[2]);
    EXPECT_LE(ac, ab + bc);
  }
}

TEST(EditDistanceTest, BoundedByLengthDifferenceAndMaxLength) {
  Rng rng(41);
  for (int i = 0; i < 200; ++i) {
    std::string a(1 + rng.UniformIndex(9), 'a');
    std::string b(1 + rng.UniformIndex(9), 'a');
    for (char& c : a) c = rng.LowercaseLetter();
    for (char& c : b) c = rng.LowercaseLetter();
    size_t d = EditDistance(a, b);
    size_t diff = a.size() > b.size() ? a.size() - b.size()
                                      : b.size() - a.size();
    EXPECT_GE(d, diff);
    EXPECT_LE(d, std::max(a.size(), b.size()));
  }
}

TEST(EditDistanceBoundedTest, ExactWithinLimit) {
  Rng rng(43);
  for (int i = 0; i < 300; ++i) {
    std::string a(1 + rng.UniformIndex(9), 'a');
    std::string b(1 + rng.UniformIndex(9), 'a');
    for (char& c : a) c = rng.LowercaseLetter();
    for (char& c : b) c = rng.LowercaseLetter();
    size_t exact = EditDistance(a, b);
    for (size_t limit : {0u, 1u, 2u, 3u, 5u, 9u}) {
      size_t bounded = EditDistanceBounded(a, b, limit);
      if (exact <= limit) {
        EXPECT_EQ(bounded, exact) << a << " vs " << b << " limit " << limit;
      } else {
        EXPECT_GT(bounded, limit) << a << " vs " << b << " limit " << limit;
      }
    }
  }
}

TEST(EditDistanceBoundedTest, ShortCircuitsOnLengthGap) {
  EXPECT_GT(EditDistanceBounded("a", "abcdefgh", 3), 3u);
  EXPECT_EQ(EditDistanceBounded("abcd", "abcd", 0), 0u);
}

// ------------------------------------------------- EditDistanceBanded

// The banded computation with iterative band doubling must return the
// *exact* distance (not an approximation) for every input — it feeds
// NormalizedEditSimilarity, whose doubles are pinned by the byte-identity
// suites.
TEST(EditDistanceBandedTest, ExactOnKnownValues) {
  EXPECT_EQ(EditDistanceBanded("", ""), 0u);
  EXPECT_EQ(EditDistanceBanded("abc", ""), 3u);
  EXPECT_EQ(EditDistanceBanded("", "abc"), 3u);
  EXPECT_EQ(EditDistanceBanded("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistanceBanded("GL03245", "GL21348"), 4u);
  EXPECT_EQ(EditDistanceBanded("GL03245", "GL83248"), 2u);
  // Worst case for a narrow band: completely different strings.
  EXPECT_EQ(EditDistanceBanded("aaaaaaaa", "bbbbbbbb"), 8u);
  EXPECT_EQ(EditDistanceBanded("abcdefgh", "hgfedcba"), 8u);
}

TEST(EditDistanceBandedTest, MatchesFullMatrixOnRandomStrings) {
  Rng rng(20260809);
  for (int i = 0; i < 500; ++i) {
    auto make = [&] {
      size_t len = rng.UniformIndex(14);
      std::string s;
      for (size_t j = 0; j < len; ++j) {
        s.push_back(static_cast<char>('a' + rng.UniformIndex(4)));
      }
      return s;
    };
    std::string a = make();
    std::string b = make();
    EXPECT_EQ(EditDistanceBanded(a, b), EditDistance(a, b))
        << "\"" << a << "\" vs \"" << b << "\"";
  }
}

// ------------------------------------------------------- similarity metrics

class SimilarityMetricTest
    : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<IdSimilarity> metric() const {
    auto m = MakeSimilarity(GetParam());
    EXPECT_TRUE(m.ok());
    return std::move(*m);
  }
};

TEST_P(SimilarityMetricTest, IdenticalStringsScoreOne) {
  auto m = metric();
  EXPECT_DOUBLE_EQ(m->Similarity("gl21348", "gl21348"), 1.0);
  EXPECT_DOUBLE_EQ(m->Similarity("", ""), 1.0);
}

TEST_P(SimilarityMetricTest, RangeIsZeroToOne) {
  auto m = metric();
  Rng rng(51);
  for (int i = 0; i < 200; ++i) {
    std::string a(1 + rng.UniformIndex(9), 'a');
    std::string b(1 + rng.UniformIndex(9), 'a');
    for (char& c : a) c = rng.LowercaseLetter();
    for (char& c : b) c = rng.LowercaseLetter();
    double s = m->Similarity(a, b);
    EXPECT_GE(s, 0.0) << a << " " << b;
    EXPECT_LE(s, 1.0) << a << " " << b;
  }
}

TEST_P(SimilarityMetricTest, Symmetric) {
  auto m = metric();
  Rng rng(53);
  for (int i = 0; i < 200; ++i) {
    std::string a(1 + rng.UniformIndex(9), 'a');
    std::string b(1 + rng.UniformIndex(9), 'a');
    for (char& c : a) c = rng.LowercaseLetter();
    for (char& c : b) c = rng.LowercaseLetter();
    EXPECT_DOUBLE_EQ(m->Similarity(a, b), m->Similarity(b, a));
  }
}

TEST_P(SimilarityMetricTest, SmallPerturbationScoresHigherThanRandom) {
  auto m = metric();
  // A one-character typo should look more similar than an unrelated string.
  EXPECT_GT(m->Similarity("abcdefg", "abcdefh"),
            m->Similarity("abcdefg", "zyxwvut"));
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, SimilarityMetricTest,
                         ::testing::Values("edit", "jaro_winkler",
                                           "bigram_cosine", "overlap"));

TEST(NormalizedEditSimilarityTest, MatchesEquationOne) {
  NormalizedEditSimilarity sim;
  // Eq. (1): 1 - dist / max(|a|, |b|).
  EXPECT_NEAR(sim.Similarity("GL03245", "GL21348"), 1.0 - 4.0 / 7.0, 1e-12);
  EXPECT_NEAR(sim.Similarity("GL03245", "GL83248"), 1.0 - 2.0 / 7.0, 1e-12);
  EXPECT_NEAR(sim.Similarity("abc", "abcdef"), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(sim.Similarity("abc", "xyz"), 0.0);
}

TEST(JaroWinklerTest, KnownBehaviors) {
  JaroWinklerSimilarity sim;
  EXPECT_DOUBLE_EQ(sim.Similarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(sim.Similarity("abc", ""), 0.0);
  EXPECT_DOUBLE_EQ(sim.Similarity("", ""), 1.0);
  // Completely disjoint alphabets.
  EXPECT_DOUBLE_EQ(sim.Similarity("aaaa", "bbbb"), 0.0);
  // Common prefix boosts similarity relative to a suffix typo.
  EXPECT_GT(sim.Similarity("martha", "marhta"), 0.9);
}

TEST(BigramCosineTest, DisjointBigramsScoreZero) {
  BigramCosineSimilarity sim;
  EXPECT_DOUBLE_EQ(sim.Similarity("aaa", "bbb"), 0.0);
  EXPECT_GT(sim.Similarity("abcd", "abce"), 0.3);
}

TEST(BigramCosineTest, SingleCharStringsFallBackToZeroUnlessEqual) {
  BigramCosineSimilarity sim;
  EXPECT_DOUBLE_EQ(sim.Similarity("a", "b"), 0.0);  // no bigrams
  EXPECT_DOUBLE_EQ(sim.Similarity("a", "a"), 1.0);  // equality short-circuit
}

TEST(OverlapCoefficientTest, SubsetScoresOne) {
  OverlapCoefficientSimilarity sim;
  // Bigrams of "abc" ⊂ bigrams of "abcd".
  EXPECT_DOUBLE_EQ(sim.Similarity("abc", "abcd"), 1.0);
  EXPECT_DOUBLE_EQ(sim.Similarity("ab", "cd"), 0.0);
}

TEST(MakeSimilarityTest, UnknownNameFails) {
  auto m = MakeSimilarity("nope");
  EXPECT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kNotFound);
}

TEST(MakeSimilarityTest, NamesRoundTrip) {
  for (const char* name :
       {"edit", "jaro_winkler", "bigram_cosine", "overlap"}) {
    auto m = MakeSimilarity(name);
    ASSERT_TRUE(m.ok()) << name;
    EXPECT_EQ((*m)->name(), name);
  }
}

}  // namespace
}  // namespace idrepair
