#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/id_similarity_repairer.h"
#include "baselines/neighborhood_repairer.h"
#include "eval/metrics.h"
#include "gen/real_like.h"
#include "graph/generators.h"
#include "repair/partitioned.h"
#include "repair/repairer.h"
#include "stream/streaming_repairer.h"
#include "test_util.h"

namespace idrepair {
namespace {

using testutil::MakeTable2Trajectories;
using testutil::RunningExampleOptions;

// ------------------------------------------------------- IdSimilarity

TEST(IdSimilarityRepairerTest, MergesCloseIdsOnRunningExample) {
  TrajectorySet set = MakeTable2Trajectories();
  IdSimilarityRepairer baseline(/*max_edit_distance=*/3);
  auto result = baseline.Repair(set);
  ASSERT_TRUE(result.ok());
  // dist(GL03245, GL83248) = 2 and dist(GL21348, GL83248) = 3, so the
  // transitive clustering folds ALL THREE trajectories into one entity —
  // the baseline's characteristic false merge (it never consults the
  // transition graph). Eq. 5 targets the longest trajectory, GL21348.
  ASSERT_EQ(result->rewrites.size(), 2u);
  EXPECT_EQ(result->rewrites.at(1), "GL21348");
  EXPECT_EQ(result->rewrites.at(2), "GL21348");
  EXPECT_EQ(result->repaired.size(), 1u);
}

TEST(IdSimilarityRepairerTest, TightThresholdMergesOnlyTheClosePair) {
  TrajectorySet set = MakeTable2Trajectories();
  IdSimilarityRepairer baseline(/*max_edit_distance=*/2);
  auto result = baseline.Repair(set);
  ASSERT_TRUE(result.ok());
  // Only GL03245 <-> GL83248 (distance 2) qualify now.
  ASSERT_EQ(result->rewrites.size(), 1u);
  // Eq. 5 target for {GL03245<C>, GL83248<D,E>} is GL83248 (longer).
  EXPECT_EQ(result->rewrites.at(1), "GL83248");
  EXPECT_EQ(result->repaired.size(), 2u);
}

TEST(IdSimilarityRepairerTest, ThresholdZeroDoesNothing) {
  TrajectorySet set = MakeTable2Trajectories();
  IdSimilarityRepairer baseline(0);
  auto result = baseline.Repair(set);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rewrites.empty());
}

TEST(IdSimilarityRepairerTest, LargeThresholdMergesEverything) {
  TrajectorySet set = MakeTable2Trajectories();
  IdSimilarityRepairer baseline(10);
  auto result = baseline.Repair(set);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->repaired.size(), 1u);
}

TEST(IdSimilarityRepairerTest, IgnoresMovementConstraints) {
  // Two similar IDs at times/locations that can never be one trajectory are
  // merged anyway — the baseline's characteristic false positive.
  std::vector<TrackingRecord> records = {
      {"aaaaaaa", 3, 100},            // D, invalid fragment
      {"aaaaaab", 3, 50000},          // D, hours later
  };
  TrajectorySet set = TrajectorySet::FromRecords(records);
  IdSimilarityRepairer baseline(3);
  auto result = baseline.Repair(set);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rewrites.size(), 1u);
  EXPECT_EQ(result->repaired.size(), 1u);
}

// ------------------------------------------------------- Neighborhood

TEST(NeighborhoodRepairerTest, AppliesCheapestResolvingRewrite) {
  TransitionGraph graph = MakePaperExampleGraph();
  TrajectorySet set = MakeTable2Trajectories();
  NeighborhoodRepairer baseline(graph, RunningExampleOptions());
  auto result = baseline.Repair(set);
  ASSERT_TRUE(result.ok());
  // GL03245<C> pairs validly with both neighbors; GL83248<D,E> is the
  // cheaper donor (distance 2 vs 4). Settling then blocks the symmetric
  // GL83248 -> GL03245 rewrite, so exactly one label changes.
  ASSERT_EQ(result->rewrites.size(), 1u);
  ASSERT_EQ(result->rewrites.count(1), 1u);
  EXPECT_EQ(result->rewrites.at(1), "GL83248");
}

TEST(NeighborhoodRepairerTest, CannotReassembleThreeFragments) {
  // The paper's critique (1): a trajectory fractured into three pieces
  // needs two coordinated rewrites; isolated binary repair finds no valid
  // pair and gives up. The core pipeline fixes the same input.
  TransitionGraph graph = MakePaperExampleGraph();
  std::vector<TrackingRecord> records = {
      {"realid", 0, 0},    // A
      {"aaaaaa", 1, 60},   // B        (corrupted fragment 1)
      {"realid", 2, 120},  // C
      {"bbbbbb", 3, 180},  // D        (corrupted fragment 2)
      {"realid", 4, 240},  // E
  };
  // No *pair* of fragments merges into a valid path (A,C,E has no A->C
  // edge once only one corrupted piece is added), so binary repair fails.
  TrajectorySet set = TrajectorySet::FromRecords(records);
  RepairOptions options = RunningExampleOptions();
  NeighborhoodRepairer baseline(graph, options);
  auto nbr = baseline.Repair(set);
  ASSERT_TRUE(nbr.ok());
  EXPECT_TRUE(nbr->rewrites.empty());

  IdRepairer core(graph, options);
  auto result = core.Repair(set);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rewrites.size(), 2u);  // both fragments -> realid
}

TEST(NeighborhoodRepairerTest, PerformsIsolatedRewritesOnly) {
  // Every rewrite is a genuine single-label change; the approach never
  // coordinates multiple rewrites toward one entity.
  TransitionGraph graph = MakePaperExampleGraph();
  TrajectorySet set = MakeTable2Trajectories();
  NeighborhoodRepairer baseline(graph, RunningExampleOptions());
  auto result = baseline.Repair(set);
  ASSERT_TRUE(result.ok());
  for (const auto& [traj, id] : result->rewrites) {
    EXPECT_NE(set.at(traj).id(), id);
  }
}

TEST(NeighborhoodRepairerTest, ValidTrajectoriesAreNeverRelabeled) {
  TransitionGraph graph = MakePaperExampleGraph();
  TrajectorySet set = MakeTable2Trajectories();
  NeighborhoodRepairer baseline(graph, RunningExampleOptions());
  auto result = baseline.Repair(set);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rewrites.count(0), 0u);  // T1 is valid
}

// --------------------------------------------- Fig 16 dominance property

TEST(BaselineComparisonTest, TransitionGraphApproachWinsOnRecall) {
  auto ds = MakeScaledRealLikeDataset(800, 0.2, /*seed=*/3);
  ASSERT_TRUE(ds.ok());
  TrajectorySet set = ds->BuildObservedTrajectories();
  auto truth = ComputeFragmentTruth(*ds, set);

  RepairOptions options;
  options.theta = 4;
  options.eta = 600;
  IdRepairer ours(ds->graph, options);
  auto core = ours.Repair(set);
  ASSERT_TRUE(core.ok());
  auto core_metrics = EvaluateRewrites(truth, set, core->rewrites);

  IdSimilarityRepairer sim_baseline(3);
  auto sim_metrics =
      EvaluateRewrites(truth, set, sim_baseline.Repair(set)->rewrites);

  NeighborhoodRepairer nbr_baseline(ds->graph, options);
  auto nbr_metrics =
      EvaluateRewrites(truth, set, nbr_baseline.Repair(set)->rewrites);

  // Fig 16: the transition-graph approach beats both baselines on recall
  // and f-measure.
  EXPECT_GT(core_metrics.recall, sim_metrics.recall);
  EXPECT_GT(core_metrics.recall, nbr_metrics.recall);
  EXPECT_GT(core_metrics.f_measure, sim_metrics.f_measure);
  EXPECT_GT(core_metrics.f_measure, nbr_metrics.f_measure);
}

TEST(BaselineComparisonTest, BaselinesStillRepairSomething) {
  auto ds = MakeScaledRealLikeDataset(500, 0.2, /*seed=*/4);
  ASSERT_TRUE(ds.ok());
  TrajectorySet set = ds->BuildObservedTrajectories();
  auto truth = ComputeFragmentTruth(*ds, set);
  IdSimilarityRepairer sim_baseline(3);
  auto m = EvaluateRewrites(truth, set, sim_baseline.Repair(set)->rewrites);
  EXPECT_GT(m.recall, 0.2);
  EXPECT_GT(m.precision, 0.3);
}

// ------------------------------------------ Unified Repairer interface

TEST(RepairerInterfaceTest, AllEnginesAreSwappablePolymorphically) {
  TransitionGraph graph = MakePaperExampleGraph();
  TrajectorySet set = MakeTable2Trajectories();
  RepairOptions options = RunningExampleOptions();

  std::vector<std::unique_ptr<Repairer>> engines;
  engines.push_back(std::make_unique<IdRepairer>(graph, options));
  engines.push_back(std::make_unique<PartitionedRepairer>(graph, options));
  engines.push_back(std::make_unique<StreamingRepairer>(graph, options));
  engines.push_back(std::make_unique<IdSimilarityRepairer>(3));
  engines.push_back(std::make_unique<NeighborhoodRepairer>(graph, options));

  for (const auto& engine : engines) {
    auto result = engine->Repair(set);
    ASSERT_TRUE(result.ok()) << engine->name();
    // Every engine reassembles the full record multiset and reports how
    // many trajectories it saw; candidate-level fields are engine-specific.
    EXPECT_EQ(result->repaired.total_records(), set.total_records())
        << engine->name();
    EXPECT_EQ(result->stats.num_trajectories, set.size()) << engine->name();
    for (const auto& [traj, id] : result->rewrites) {
      EXPECT_NE(set.at(traj).id(), id) << engine->name();
    }
  }
}

TEST(RepairerInterfaceTest, CandidateEnginesAgreeOnTheRunningExample) {
  TransitionGraph graph = MakePaperExampleGraph();
  TrajectorySet set = MakeTable2Trajectories();
  RepairOptions options = RunningExampleOptions();
  IdRepairer core(graph, options);
  PartitionedRepairer partitioned(graph, options);
  const Repairer* engines[] = {&core, &partitioned};
  for (const Repairer* engine : engines) {
    auto result = engine->Repair(set);
    ASSERT_TRUE(result.ok()) << engine->name();
    ASSERT_EQ(result->rewrites.size(), 1u) << engine->name();
    EXPECT_EQ(result->rewrites.at(1), "GL83248") << engine->name();
  }
}

}  // namespace
}  // namespace idrepair
