#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "graph/generators.h"
#include "test_util.h"
#include "traj/csv.h"
#include "traj/merge.h"
#include "traj/tracking_record.h"
#include "traj/trajectory.h"
#include "traj/trajectory_set.h"

namespace idrepair {
namespace {

using testutil::HMS;
using testutil::MakeTable1Records;
using testutil::MakeTable2Trajectories;

// -------------------------------------------------------------- Trajectory

TEST(TrajectoryTest, ConstructorSortsChronologically) {
  Trajectory t("id", {{2, 30}, {0, 10}, {1, 20}});
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.point(0).ts, 10);
  EXPECT_EQ(t.point(1).ts, 20);
  EXPECT_EQ(t.point(2).ts, 30);
  EXPECT_EQ(t.LocationSequence(), (std::vector<LocationId>{0, 1, 2}));
}

TEST(TrajectoryTest, StartEndAndSpan) {
  Trajectory t("id", {{0, 100}, {1, 400}});
  EXPECT_EQ(t.start_time(), 100);
  EXPECT_EQ(t.end_time(), 400);
  EXPECT_EQ(t.TimeSpan(), 300);
}

TEST(TrajectoryTest, ValidityAgainstPaperGraph) {
  TransitionGraph g = MakePaperExampleGraph();
  Trajectory abde("x", {{0, 1}, {1, 2}, {3, 3}, {4, 4}});
  Trajectory cde("y", {{2, 1}, {3, 2}, {4, 3}});
  Trajectory c("z", {{2, 1}});
  Trajectory de("w", {{3, 1}, {4, 2}});
  EXPECT_TRUE(abde.IsValid(g));
  EXPECT_TRUE(cde.IsValid(g));
  EXPECT_FALSE(c.IsValid(g));   // C is not an exit
  EXPECT_FALSE(de.IsValid(g));  // D is not an entrance
}

TEST(TrajectoryTest, EqualTimestampsInvalidateTrajectory) {
  TransitionGraph g = MakePaperExampleGraph();
  Trajectory t("x", {{2, 5}, {3, 5}, {4, 6}});
  EXPECT_FALSE(t.IsValid(g));
}

TEST(TrajectoryTest, EmptyTrajectoryIsInvalid) {
  TransitionGraph g = MakePaperExampleGraph();
  Trajectory t;
  EXPECT_FALSE(t.IsValid(g));
  EXPECT_TRUE(t.empty());
}

TEST(TrajectoryTest, ToStringRendersPaperNotation) {
  TransitionGraph g = MakePaperExampleGraph();
  Trajectory t("GL21348", {{0, 1}, {1, 2}, {3, 3}, {4, 4}});
  EXPECT_EQ(t.ToString(g), "GL21348<A -> B -> D -> E>");
}

// ----------------------------------------------------------- TrajectorySet

TEST(TrajectorySetTest, GroupsTable1IntoTable2) {
  TrajectorySet set = MakeTable2Trajectories();
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(set.total_records(), 7u);
  // Start-time order: GL21348 (08:09), GL03245 (08:17), GL83248 (08:19).
  EXPECT_EQ(set.at(0).id(), "GL21348");
  EXPECT_EQ(set.at(1).id(), "GL03245");
  EXPECT_EQ(set.at(2).id(), "GL83248");
  EXPECT_EQ(set.at(0).size(), 4u);
  EXPECT_EQ(set.at(1).size(), 1u);
  EXPECT_EQ(set.at(2).size(), 2u);
}

TEST(TrajectorySetTest, OrderIsDeterministicRegardlessOfInputOrder) {
  auto records = MakeTable1Records();
  TrajectorySet a = TrajectorySet::FromRecords(records);
  std::reverse(records.begin(), records.end());
  TrajectorySet b = TrajectorySet::FromRecords(records);
  ASSERT_EQ(a.size(), b.size());
  for (TrajIndex i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.at(i), b.at(i));
  }
}

TEST(TrajectorySetTest, StartTimeTiesBreakById) {
  std::vector<TrackingRecord> records = {
      {"bbb", 0, 100}, {"aaa", 1, 100}, {"ccc", 2, 50}};
  TrajectorySet set = TrajectorySet::FromRecords(records);
  EXPECT_EQ(set.at(0).id(), "ccc");
  EXPECT_EQ(set.at(1).id(), "aaa");
  EXPECT_EQ(set.at(2).id(), "bbb");
}

TEST(TrajectorySetTest, InvalidTrajectoriesOnRunningExample) {
  TransitionGraph g = MakePaperExampleGraph();
  TrajectorySet set = MakeTable2Trajectories();
  // Table 2: only the first trajectory is valid.
  EXPECT_EQ(set.InvalidTrajectories(g), (std::vector<TrajIndex>{1, 2}));
}

TEST(TrajectorySetTest, BuildIdIndex) {
  TrajectorySet set = MakeTable2Trajectories();
  auto index = set.BuildIdIndex();
  EXPECT_EQ(index.at("GL21348"), 0u);
  EXPECT_EQ(index.at("GL03245"), 1u);
  EXPECT_EQ(index.at("GL83248"), 2u);
}

TEST(TrajectorySetTest, EmptySet) {
  TrajectorySet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.total_records(), 0u);
  TransitionGraph g = MakePaperExampleGraph();
  EXPECT_TRUE(set.InvalidTrajectories(g).empty());
}

// ------------------------------------------------------------------ Merge

TEST(MergeTest, ChronologicalOrderAcrossSources) {
  Trajectory a("a", {{0, 10}, {2, 30}});
  Trajectory b("b", {{1, 20}, {3, 40}});
  auto merged = MergeChronological(a, b);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].ts, 10);
  EXPECT_EQ(merged[1].ts, 20);
  EXPECT_EQ(merged[2].ts, 30);
  EXPECT_EQ(merged[3].ts, 40);
  EXPECT_EQ(merged[0].source, 0u);
  EXPECT_EQ(merged[1].source, 1u);
}

TEST(MergeTest, TieBreaksAreDeterministic) {
  Trajectory a("a", {{1, 10}});
  Trajectory b("b", {{0, 10}});
  auto m1 = MergeChronological(a, b);
  auto m2 = MergeChronological(a, b);
  ASSERT_EQ(m1.size(), 2u);
  EXPECT_EQ(m1[0].loc, m2[0].loc);
  EXPECT_EQ(m1[0].loc, 0u);  // location breaks the timestamp tie
}

TEST(MergeTest, JoinRewritesIdAndMerges) {
  TrajectorySet set = MakeTable2Trajectories();
  const Trajectory* group[] = {&set.at(1), &set.at(2)};
  Trajectory joined = Join(group, "GL83248");
  EXPECT_EQ(joined.id(), "GL83248");
  ASSERT_EQ(joined.size(), 3u);
  // C -> D -> E, the repaired trajectory of Example 1.4.
  EXPECT_EQ(joined.LocationSequence(), (std::vector<LocationId>{2, 3, 4}));
  TransitionGraph g = MakePaperExampleGraph();
  EXPECT_TRUE(joined.IsValid(g));
}

TEST(MergeTest, JoinPreservesRecordCount) {
  TrajectorySet set = MakeTable2Trajectories();
  const Trajectory* group[] = {&set.at(0), &set.at(1), &set.at(2)};
  Trajectory joined = Join(group, "X");
  EXPECT_EQ(joined.size(), set.total_records());
}

// -------------------------------------------------------------------- CSV

TEST(CsvTest, RoundTrip) {
  TransitionGraph g = MakePaperExampleGraph();
  auto records = MakeTable1Records();
  std::ostringstream out;
  ASSERT_TRUE(WriteRecordsCsv(out, g, records).ok());
  std::istringstream in(out.str());
  auto read = ReadRecordsCsv(in, g);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, records);
}

TEST(CsvTest, ReadSkipsHeaderAndBlankLines) {
  TransitionGraph g = MakePaperExampleGraph();
  std::istringstream in("id,loc,ts\n\nGL1,A,100\n  \nGL2,B,200\n");
  auto read = ReadRecordsCsv(in, g);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), 2u);
  EXPECT_EQ((*read)[0].id, "GL1");
  EXPECT_EQ((*read)[0].loc, 0u);
  EXPECT_EQ((*read)[1].ts, 200);
}

TEST(CsvTest, ReadTrimsFieldWhitespace) {
  TransitionGraph g = MakePaperExampleGraph();
  std::istringstream in(" GL1 , A , 100 \n");
  auto read = ReadRecordsCsv(in, g);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ((*read)[0].id, "GL1");
  EXPECT_EQ((*read)[0].loc, 0u);
  EXPECT_EQ((*read)[0].ts, 100);
}

TEST(CsvTest, ReadRejectsWrongFieldCount) {
  TransitionGraph g = MakePaperExampleGraph();
  std::istringstream in("GL1,A\n");
  auto read = ReadRecordsCsv(in, g);
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
}

TEST(CsvTest, ReadRejectsUnknownLocation) {
  TransitionGraph g = MakePaperExampleGraph();
  std::istringstream in("GL1,Z,100\n");
  auto read = ReadRecordsCsv(in, g);
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(CsvTest, ReadRejectsBadTimestamp) {
  TransitionGraph g = MakePaperExampleGraph();
  std::istringstream in("GL1,A,notanumber\n");
  auto read = ReadRecordsCsv(in, g);
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
}

TEST(CsvTest, ReadRejectsEmptyId) {
  TransitionGraph g = MakePaperExampleGraph();
  std::istringstream in(",A,100\n");
  auto read = ReadRecordsCsv(in, g);
  EXPECT_FALSE(read.ok());
}

TEST(CsvTest, WriteRejectsUnknownLocationId) {
  TransitionGraph g = MakePaperExampleGraph();
  std::ostringstream out;
  std::vector<TrackingRecord> records = {{"GL1", 99, 100}};
  EXPECT_FALSE(WriteRecordsCsv(out, g, records).ok());
}

TEST(CsvTest, FileRoundTrip) {
  TransitionGraph g = MakePaperExampleGraph();
  auto records = MakeTable1Records();
  std::string path = ::testing::TempDir() + "/idrepair_csv_test.csv";
  ASSERT_TRUE(WriteRecordsCsvFile(path, g, records).ok());
  auto read = ReadRecordsCsvFile(path, g);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, records);
}

TEST(CsvTest, HandlesCrlfLineEndings) {
  TransitionGraph g = MakePaperExampleGraph();
  std::istringstream in("id,loc,ts\r\nGL1,A,100\r\nGL2,B,200\r\n");
  auto read = ReadRecordsCsv(in, g);
  ASSERT_TRUE(read.ok()) << read.status();
  ASSERT_EQ(read->size(), 2u);
  EXPECT_EQ((*read)[1].id, "GL2");
  EXPECT_EQ((*read)[1].ts, 200);
}

TEST(CsvTest, NegativeTimestampsAreAccepted) {
  // Timestamps are arbitrary-epoch offsets; negatives are legal.
  TransitionGraph g = MakePaperExampleGraph();
  std::istringstream in("GL1,A,-50\n");
  auto read = ReadRecordsCsv(in, g);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ((*read)[0].ts, -50);
}

TEST(CsvTest, MissingFileIsIoError) {
  TransitionGraph g = MakePaperExampleGraph();
  auto read = ReadRecordsCsvFile("/nonexistent/path.csv", g);
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

TEST(RecordTest, RecordChronoLessOrdersByTimestampFirst) {
  TrackingRecord a{"z", 5, 10};
  TrackingRecord b{"a", 0, 20};
  EXPECT_TRUE(RecordChronoLess(a, b));
  EXPECT_FALSE(RecordChronoLess(b, a));
  TrackingRecord c{"a", 0, 10};
  EXPECT_TRUE(RecordChronoLess(c, a));  // ties by location
}

}  // namespace
}  // namespace idrepair
