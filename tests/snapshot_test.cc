// Snapshot format robustness: byte-identity of save -> load -> save across
// graph shapes, and clean rejection of every corruption class (truncation,
// bad magic, wrong version, CRC mismatch, trailing bytes, cross-section
// inconsistency). A snapshot loader that crashes on a bad file would turn a
// torn disk write into a daemon that can never start again.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "gen/synthetic.h"
#include "graph/generators.h"
#include "lig/length_indexed_grids.h"
#include "repair/repairer.h"
#include "server/snapshot.h"
#include "test_util.h"

namespace idrepair {
namespace server {
namespace {

namespace fs = std::filesystem;

Result<BundlePtr> MakePaperBundle() {
  return MakeBundle("paper", 3, MakePaperExampleGraph(),
                    testutil::RunningExampleOptions(),
                    testutil::MakeTable1Records());
}

/// Patches the header's CRC and payload-size fields to match the (possibly
/// tampered) payload, so tests can corrupt *content* without tripping the
/// cheaper CRC check first.
void RestampHeader(std::string* bytes) {
  ASSERT_GE(bytes->size(), kSnapshotHeaderBytes);
  uint64_t payload_size = bytes->size() - kSnapshotHeaderBytes;
  uint32_t crc =
      Crc32(bytes->data() + kSnapshotHeaderBytes, payload_size);
  std::memcpy(bytes->data() + 8, &payload_size, sizeof(payload_size));
  std::memcpy(bytes->data() + 16, &crc, sizeof(crc));
}

TEST(SnapshotTest, SaveLoadSaveIsByteIdenticalAcrossShapes) {
  struct Shape {
    const char* name;
    TransitionGraph graph;
    std::vector<TrackingRecord> corpus;
  };
  auto synthetic_corpus = [](const TransitionGraph& graph, uint64_t seed) {
    SyntheticConfig config;
    config.num_trajectories = 40;
    config.record_error_rate = 0.25;
    config.max_path_len = 20;  // the chain shape's only valid path is long
    config.seed = seed;
    auto dataset = GenerateSyntheticDataset(graph, config);
    EXPECT_TRUE(dataset.ok()) << dataset.status();
    if (!dataset.ok()) return std::vector<TrackingRecord>{};
    return dataset->ObservedRecords();
  };
  std::vector<Shape> shapes;
  shapes.push_back({"paper+corpus", MakePaperExampleGraph(),
                    testutil::MakeTable1Records()});
  shapes.push_back({"paper graph-only", MakePaperExampleGraph(), {}});
  shapes.push_back({"chain", MakeChainGraph(17),
                    synthetic_corpus(MakeChainGraph(17), 7)});
  shapes.push_back({"grid", MakeGridNetwork(4, 5),
                    synthetic_corpus(MakeGridNetwork(4, 5), 11)});
  shapes.push_back({"real-like", MakeRealLikeGraph(),
                    synthetic_corpus(MakeRealLikeGraph(), 13)});

  for (Shape& shape : shapes) {
    SCOPED_TRACE(shape.name);
    auto bundle = MakeBundle("shape", 2, std::move(shape.graph),
                             testutil::RunningExampleOptions(),
                             std::move(shape.corpus));
    ASSERT_TRUE(bundle.ok()) << bundle.status();
    std::string first = EncodeSnapshot(**bundle);
    auto loaded = DecodeSnapshot(first);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    std::string second = EncodeSnapshot(**loaded);
    EXPECT_EQ(first, second);
    // And once more through the decoded-of-decoded bundle: a fixed point,
    // not merely a 2-cycle.
    auto reloaded = DecodeSnapshot(second);
    ASSERT_TRUE(reloaded.ok()) << reloaded.status();
    EXPECT_EQ(EncodeSnapshot(**reloaded), first);
  }
}

TEST(SnapshotTest, DecodedBundlePreservesEveryField) {
  auto bundle = MakePaperBundle();
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  auto loaded = DecodeSnapshot(EncodeSnapshot(**bundle));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const GraphBundle& b = **loaded;
  EXPECT_EQ(b.name, "paper");
  EXPECT_EQ(b.version, 3u);
  EXPECT_EQ(b.graph.num_locations(), (*bundle)->graph.num_locations());
  EXPECT_EQ(b.graph.num_edges(), (*bundle)->graph.num_edges());
  EXPECT_EQ(b.graph.EdgeMatrix(), (*bundle)->graph.EdgeMatrix());
  EXPECT_EQ(b.options.theta, 5u);
  EXPECT_EQ(b.options.eta, 1200);
  ASSERT_NE(b.corpus, nullptr);
  EXPECT_EQ(b.corpus->total_records(), 7u);
  ASSERT_NE(b.lig, nullptr);
  // The loaded LIG indexes the loaded corpus object — the pointer identity
  // RepairOptions::resident_lig reuse hinges on.
  EXPECT_EQ(&b.lig->indexed_set(), b.corpus.get());
}

TEST(SnapshotTest, LoadedLigRepairsIdenticallyToFreshBuild) {
  auto bundle = MakePaperBundle();
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  auto loaded = DecodeSnapshot(EncodeSnapshot(**bundle));
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  RepairOptions with_resident = (*loaded)->options;
  with_resident.resident_lig = (*loaded)->lig.get();
  IdRepairer resident_engine((*loaded)->graph, with_resident);
  auto resident = resident_engine.Repair(*(*loaded)->corpus);
  ASSERT_TRUE(resident.ok()) << resident.status();

  IdRepairer fresh_engine((*bundle)->graph, (*bundle)->options);
  auto fresh = fresh_engine.Repair(*(*bundle)->corpus);
  ASSERT_TRUE(fresh.ok()) << fresh.status();

  EXPECT_EQ(resident->repaired.trajectories(),
            fresh->repaired.trajectories());
  EXPECT_EQ(resident->rewrites, fresh->rewrites);
  EXPECT_EQ(resident->selected, fresh->selected);
}

TEST(SnapshotTest, FileRoundTripMatchesInMemoryBytes) {
  auto bundle = MakePaperBundle();
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  fs::path path = fs::temp_directory_path() / "idrepair_snapshot_rt.idrs";
  ASSERT_TRUE(WriteSnapshotFile(path.string(), **bundle).ok());
  auto loaded = ReadSnapshotFile(path.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  std::ifstream in(path, std::ios::binary);
  std::string on_disk((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(on_disk, EncodeSnapshot(**loaded));
  std::remove(path.string().c_str());
}

TEST(SnapshotTest, TruncationAtEveryPrefixIsRejectedCleanly) {
  auto bundle = MakePaperBundle();
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  std::string bytes = EncodeSnapshot(**bundle);
  // Every prefix must fail with a clean Status — never crash, never
  // succeed. Covers header truncation, section-boundary truncation, and
  // mid-section truncation in one sweep (the file is small).
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto r = DecodeSnapshot(std::string_view(bytes).substr(0, len));
    ASSERT_FALSE(r.ok()) << "prefix of " << len << " bytes decoded";
  }
  EXPECT_TRUE(DecodeSnapshot(bytes).ok());
}

TEST(SnapshotTest, BadMagicIsRejected) {
  auto bundle = MakePaperBundle();
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  std::string bytes = EncodeSnapshot(**bundle);
  bytes[0] ^= 0x01;
  auto r = DecodeSnapshot(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r.status().message().find("magic"), std::string::npos)
      << r.status();
}

TEST(SnapshotTest, WrongVersionIsRejected) {
  auto bundle = MakePaperBundle();
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  std::string bytes = EncodeSnapshot(**bundle);
  uint32_t version = 2;
  std::memcpy(bytes.data() + 4, &version, sizeof(version));
  auto r = DecodeSnapshot(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("version"), std::string::npos)
      << r.status();
}

TEST(SnapshotTest, CrcMismatchIsRejected) {
  auto bundle = MakePaperBundle();
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  std::string bytes = EncodeSnapshot(**bundle);
  // Flip one payload byte without restamping the header.
  bytes[kSnapshotHeaderBytes + bytes.size() / 2] ^= 0x40;
  auto r = DecodeSnapshot(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r.status().message().find("checksum"), std::string::npos)
      << r.status();
}

TEST(SnapshotTest, TrailingGarbageIsRejected) {
  auto bundle = MakePaperBundle();
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  std::string bytes = EncodeSnapshot(**bundle);
  bytes += "extra";
  auto r = DecodeSnapshot(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

/// Locates section `tag`'s body inside a whole snapshot byte string.
/// Returns {offset, len} into `bytes`, or {0, 0} when absent.
std::pair<size_t, size_t> FindSection(const std::string& bytes,
                                      uint32_t tag) {
  size_t pos = kSnapshotHeaderBytes;
  while (pos + 12 <= bytes.size()) {
    uint32_t t;
    uint64_t len;
    std::memcpy(&t, bytes.data() + pos, sizeof(t));
    std::memcpy(&len, bytes.data() + pos + 4, sizeof(len));
    pos += 12;
    if (t == tag) return {pos, static_cast<size_t>(len)};
    pos += static_cast<size_t>(len);
  }
  return {0, 0};
}

TEST(SnapshotTest, MatrixTamperSurvivingCrcIsStillRejected) {
  auto bundle = MakePaperBundle();
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  std::string bytes = EncodeSnapshot(**bundle);
  // An editor that flips a matrix bit AND fixes the CRC still fails the
  // cross-check against the matrix rebuilt from the edge section. Flip one
  // bit inside every word of section 4's packed bitset (the words sit at
  // the end of the section body, after the u64 bit/word counts).
  auto [matrix_off, matrix_len] = FindSection(bytes, 4);
  ASSERT_GT(matrix_len, 16u) << "matrix section not found";
  for (size_t i = matrix_off + 16; i < matrix_off + matrix_len; ++i) {
    std::string tampered = bytes;
    tampered[i] ^= 0x04;
    RestampHeader(&tampered);
    auto r = DecodeSnapshot(tampered);
    ASSERT_FALSE(r.ok()) << "matrix byte " << (i - matrix_off)
                         << " tamper decoded";
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
    EXPECT_NE(r.status().message().find("matrix"), std::string::npos)
        << r.status();
  }
}

TEST(SnapshotTest, EveryPayloadByteFlipIsRejectedOrDecodesToAFixedPoint) {
  auto bundle = MakePaperBundle();
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  std::string bytes = EncodeSnapshot(**bundle);
  // Flip each payload byte in turn (restamping the CRC so content checks,
  // not the checksum, do the work). Most flips must be rejected outright;
  // a flip that survives (e.g. a changed timestamp, or a non-canonical
  // bool byte) must decode to a bundle whose own encoding is a decode
  // fixed point — corruption may be semantically invisible, but it must
  // never produce a bundle the loader itself cannot round-trip.
  size_t rejected = 0;
  size_t accepted = 0;
  for (size_t i = kSnapshotHeaderBytes; i < bytes.size(); ++i) {
    std::string tampered = bytes;
    tampered[i] ^= 0x04;
    RestampHeader(&tampered);
    auto r = DecodeSnapshot(tampered);
    if (!r.ok()) {
      ++rejected;
      continue;
    }
    ++accepted;
    std::string normalized = EncodeSnapshot(**r);
    auto r2 = DecodeSnapshot(normalized);
    ASSERT_TRUE(r2.ok()) << "byte " << i << ": " << r2.status();
    EXPECT_EQ(EncodeSnapshot(**r2), normalized) << "byte " << i;
  }
  // The structured sections make the vast majority of flips detectable.
  EXPECT_GT(rejected, accepted);
}

TEST(SnapshotTest, LigSectionMismatchedOptionsIsRejected) {
  // FromParts is the snapshot's trust boundary for the LIG arena; feed it
  // structurally broken Parts directly.
  auto set = testutil::MakeTable2Trajectories();
  LengthIndexedGrids::Options options;
  options.theta = 5;
  options.eta = 1200;
  LengthIndexedGrids lig(set, options);
  LengthIndexedGrids::Parts good = lig.ToParts();

  {
    LengthIndexedGrids::Parts bad = good;
    bad.cell_offsets.pop_back();
    EXPECT_FALSE(LengthIndexedGrids::FromParts(set, std::move(bad)).ok());
  }
  {
    LengthIndexedGrids::Parts bad = good;
    if (!bad.cell_offsets.empty()) bad.cell_offsets[0] = 1;
    EXPECT_FALSE(LengthIndexedGrids::FromParts(set, std::move(bad)).ok());
  }
  {
    LengthIndexedGrids::Parts bad = good;
    bad.num_indexed += 1;
    EXPECT_FALSE(LengthIndexedGrids::FromParts(set, std::move(bad)).ok());
  }
  {
    LengthIndexedGrids::Parts bad = good;
    for (auto& e : bad.cell_entries) e = 1000;  // out of range for the set
    EXPECT_FALSE(LengthIndexedGrids::FromParts(set, std::move(bad)).ok());
  }
  auto ok = LengthIndexedGrids::FromParts(set, std::move(good));
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(&(*ok)->indexed_set(), &set);
}

TEST(SnapshotTest, MakeBundleValidatesInputs) {
  EXPECT_FALSE(MakeBundle("", 1, MakePaperExampleGraph(),
                          testutil::RunningExampleOptions(), {})
                   .ok());
  EXPECT_FALSE(MakeBundle("x", 0, MakePaperExampleGraph(),
                          testutil::RunningExampleOptions(), {})
                   .ok());
  // Corpus record referencing a location the graph does not have.
  std::vector<TrackingRecord> bad = {{"id", 999, 0}};
  EXPECT_FALSE(MakeBundle("x", 1, MakePaperExampleGraph(),
                          testutil::RunningExampleOptions(), std::move(bad))
                   .ok());
}

}  // namespace
}  // namespace server
}  // namespace idrepair
