#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "gen/real_like.h"
#include "gen/synthetic.h"
#include "graph/generators.h"
#include "lig/length_indexed_grids.h"

namespace idrepair {
namespace {

TrajectorySet MakeSmallSet() {
  // Lengths 1..3, assorted start/end times.
  std::vector<TrackingRecord> records = {
      {"t1", 0, 0},    {"t1", 1, 100},  {"t1", 2, 200},  // len 3, [0,200]
      {"t2", 0, 150},                                    // len 1, [150,150]
      {"t3", 1, 400},  {"t3", 2, 500},                   // len 2, [400,500]
      {"t4", 0, 5000},                                   // len 1, far future
  };
  return TrajectorySet::FromRecords(records);
}

LengthIndexedGrids::Options SmallOptions() {
  LengthIndexedGrids::Options o;
  o.theta = 4;
  o.eta = 600;
  o.time_bin = 60;
  return o;
}

std::set<TrajIndex> Candidates(const LengthIndexedGrids& lig, TrajIndex k) {
  std::vector<TrajIndex> out;
  lig.CollectCandidates(k, &out);
  return {out.begin(), out.end()};
}

TEST(LigTest, IndexesAllEligibleTrajectories) {
  TrajectorySet set = MakeSmallSet();
  LengthIndexedGrids lig(set, SmallOptions());
  EXPECT_EQ(lig.num_indexed(), 4u);
}

TEST(LigTest, ExcludesSelf) {
  TrajectorySet set = MakeSmallSet();
  LengthIndexedGrids lig(set, SmallOptions());
  for (TrajIndex k = 0; k < set.size(); ++k) {
    EXPECT_EQ(Candidates(lig, k).count(k), 0u);
  }
}

TEST(LigTest, TimeWindowExcludesFarFutureTrajectory) {
  TrajectorySet set = MakeSmallSet();
  LengthIndexedGrids lig(set, SmallOptions());
  // t4 starts at 5000, far outside every other trajectory's η-window.
  auto idx = set.BuildIdIndex();
  TrajIndex t1 = idx.at("t1");
  TrajIndex t4 = idx.at("t4");
  EXPECT_EQ(Candidates(lig, t1).count(t4), 0u);
  EXPECT_EQ(Candidates(lig, t4).count(t1), 0u);
}

TEST(LigTest, LengthCriterionFiltersCandidates) {
  TrajectorySet set = MakeSmallSet();
  auto idx = set.BuildIdIndex();
  LengthIndexedGrids::Options o = SmallOptions();
  o.theta = 4;
  LengthIndexedGrids lig(set, o);
  // Probe t1 (len 3): only candidates of length <= 1 qualify.
  auto c = Candidates(lig, idx.at("t1"));
  EXPECT_EQ(c.count(idx.at("t3")), 0u);  // len 2: 3+2 > θ
  EXPECT_EQ(c.count(idx.at("t2")), 1u);  // len 1, inside window
}

TEST(LigTest, ProbeAtThetaHasNoCandidates) {
  TrajectorySet set = MakeSmallSet();
  auto idx = set.BuildIdIndex();
  LengthIndexedGrids::Options o = SmallOptions();
  o.theta = 3;
  LengthIndexedGrids lig(set, o);
  EXPECT_TRUE(Candidates(lig, idx.at("t1")).empty());  // len 3 == θ
}

TEST(LigTest, OverlongSpanTrajectoriesAreNotIndexed) {
  std::vector<TrackingRecord> records = {
      {"slow", 0, 0}, {"slow", 1, 10000},  // span 10000 > η
      {"ok", 0, 100},
  };
  TrajectorySet set = TrajectorySet::FromRecords(records);
  LengthIndexedGrids lig(set, SmallOptions());
  EXPECT_EQ(lig.num_indexed(), 1u);
}

// The key correctness property (what makes Fig 14(a) a fair comparison):
// the index never loses a pair that the exhaustive method would test
// successfully.
TEST(LigTest, NeverMissesAFeasiblePair) {
  auto ds = MakeScaledRealLikeDataset(300);
  ASSERT_TRUE(ds.ok());
  TrajectorySet set = ds->BuildObservedTrajectories();
  LengthIndexedGrids::Options o;
  o.theta = 4;
  o.eta = 600;
  o.time_bin = 60;
  LengthIndexedGrids lig(set, o);
  for (TrajIndex i = 0; i < set.size(); ++i) {
    auto candidates = Candidates(lig, i);
    for (TrajIndex j = 0; j < set.size(); ++j) {
      if (i == j) continue;
      const Trajectory& a = set.at(i);
      const Trajectory& b = set.at(j);
      // The exact §5.1 criteria.
      bool feasible =
          a.size() + b.size() <= o.theta && b.TimeSpan() <= o.eta &&
          b.start_time() >= a.end_time() - o.eta &&
          b.start_time() <= a.start_time() + o.eta &&
          b.end_time() >= a.end_time() - o.eta &&
          b.end_time() <= a.start_time() + o.eta;
      if (feasible) {
        EXPECT_EQ(candidates.count(j), 1u)
            << "missed pair " << i << "," << j;
      }
    }
  }
}

TEST(LigTest, CandidateCountIsMuchSmallerThanAllPairs) {
  auto ds = MakeScaledRealLikeDataset(2000);
  ASSERT_TRUE(ds.ok());
  TrajectorySet set = ds->BuildObservedTrajectories();
  LengthIndexedGrids::Options o;
  o.theta = 4;
  o.eta = 600;
  o.time_bin = 60;
  LengthIndexedGrids lig(set, o);
  size_t total = 0;
  std::vector<TrajIndex> out;
  for (TrajIndex i = 0; i < set.size(); ++i) {
    out.clear();
    lig.CollectCandidates(i, &out);
    total += out.size();
  }
  size_t all_pairs = set.size() * (set.size() - 1);
  EXPECT_LT(total, all_pairs / 4) << "index prunes too little";
}

TEST(LigTest, EmptyOutputForSingletonSet) {
  std::vector<TrackingRecord> records = {{"only", 0, 10}};
  TrajectorySet set = TrajectorySet::FromRecords(records);
  LengthIndexedGrids lig(set, SmallOptions());
  EXPECT_TRUE(Candidates(lig, 0).empty());
}

}  // namespace
}  // namespace idrepair
