#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "gen/real_like.h"
#include "gen/synthetic.h"
#include "graph/generators.h"
#include "lig/length_indexed_grids.h"

namespace idrepair {
namespace {

TrajectorySet MakeSmallSet() {
  // Lengths 1..3, assorted start/end times.
  std::vector<TrackingRecord> records = {
      {"t1", 0, 0},    {"t1", 1, 100},  {"t1", 2, 200},  // len 3, [0,200]
      {"t2", 0, 150},                                    // len 1, [150,150]
      {"t3", 1, 400},  {"t3", 2, 500},                   // len 2, [400,500]
      {"t4", 0, 5000},                                   // len 1, far future
  };
  return TrajectorySet::FromRecords(records);
}

LengthIndexedGrids::Options SmallOptions() {
  LengthIndexedGrids::Options o;
  o.theta = 4;
  o.eta = 600;
  o.time_bin = 60;
  return o;
}

std::set<TrajIndex> Candidates(const LengthIndexedGrids& lig, TrajIndex k) {
  std::vector<TrajIndex> out;
  lig.CollectCandidates(k, &out);
  return {out.begin(), out.end()};
}

TEST(LigTest, IndexesAllEligibleTrajectories) {
  TrajectorySet set = MakeSmallSet();
  LengthIndexedGrids lig(set, SmallOptions());
  EXPECT_EQ(lig.num_indexed(), 4u);
}

TEST(LigTest, ExcludesSelf) {
  TrajectorySet set = MakeSmallSet();
  LengthIndexedGrids lig(set, SmallOptions());
  for (TrajIndex k = 0; k < set.size(); ++k) {
    EXPECT_EQ(Candidates(lig, k).count(k), 0u);
  }
}

TEST(LigTest, TimeWindowExcludesFarFutureTrajectory) {
  TrajectorySet set = MakeSmallSet();
  LengthIndexedGrids lig(set, SmallOptions());
  // t4 starts at 5000, far outside every other trajectory's η-window.
  auto idx = set.BuildIdIndex();
  TrajIndex t1 = idx.at("t1");
  TrajIndex t4 = idx.at("t4");
  EXPECT_EQ(Candidates(lig, t1).count(t4), 0u);
  EXPECT_EQ(Candidates(lig, t4).count(t1), 0u);
}

TEST(LigTest, LengthCriterionFiltersCandidates) {
  TrajectorySet set = MakeSmallSet();
  auto idx = set.BuildIdIndex();
  LengthIndexedGrids::Options o = SmallOptions();
  o.theta = 4;
  LengthIndexedGrids lig(set, o);
  // Probe t1 (len 3): only candidates of length <= 1 qualify.
  auto c = Candidates(lig, idx.at("t1"));
  EXPECT_EQ(c.count(idx.at("t3")), 0u);  // len 2: 3+2 > θ
  EXPECT_EQ(c.count(idx.at("t2")), 1u);  // len 1, inside window
}

TEST(LigTest, ProbeAtThetaHasNoCandidates) {
  TrajectorySet set = MakeSmallSet();
  auto idx = set.BuildIdIndex();
  LengthIndexedGrids::Options o = SmallOptions();
  o.theta = 3;
  LengthIndexedGrids lig(set, o);
  EXPECT_TRUE(Candidates(lig, idx.at("t1")).empty());  // len 3 == θ
}

TEST(LigTest, OverlongSpanTrajectoriesAreNotIndexed) {
  std::vector<TrackingRecord> records = {
      {"slow", 0, 0}, {"slow", 1, 10000},  // span 10000 > η
      {"ok", 0, 100},
  };
  TrajectorySet set = TrajectorySet::FromRecords(records);
  LengthIndexedGrids lig(set, SmallOptions());
  EXPECT_EQ(lig.num_indexed(), 1u);
}

// The key correctness property (what makes Fig 14(a) a fair comparison):
// the index never loses a pair that the exhaustive method would test
// successfully.
TEST(LigTest, NeverMissesAFeasiblePair) {
  auto ds = MakeScaledRealLikeDataset(300);
  ASSERT_TRUE(ds.ok());
  TrajectorySet set = ds->BuildObservedTrajectories();
  LengthIndexedGrids::Options o;
  o.theta = 4;
  o.eta = 600;
  o.time_bin = 60;
  LengthIndexedGrids lig(set, o);
  for (TrajIndex i = 0; i < set.size(); ++i) {
    auto candidates = Candidates(lig, i);
    for (TrajIndex j = 0; j < set.size(); ++j) {
      if (i == j) continue;
      const Trajectory& a = set.at(i);
      const Trajectory& b = set.at(j);
      // The exact §5.1 criteria.
      bool feasible =
          a.size() + b.size() <= o.theta && b.TimeSpan() <= o.eta &&
          b.start_time() >= a.end_time() - o.eta &&
          b.start_time() <= a.start_time() + o.eta &&
          b.end_time() >= a.end_time() - o.eta &&
          b.end_time() <= a.start_time() + o.eta;
      if (feasible) {
        EXPECT_EQ(candidates.count(j), 1u)
            << "missed pair " << i << "," << j;
      }
    }
  }
}

TEST(LigTest, CandidateCountIsMuchSmallerThanAllPairs) {
  auto ds = MakeScaledRealLikeDataset(2000);
  ASSERT_TRUE(ds.ok());
  TrajectorySet set = ds->BuildObservedTrajectories();
  LengthIndexedGrids::Options o;
  o.theta = 4;
  o.eta = 600;
  o.time_bin = 60;
  LengthIndexedGrids lig(set, o);
  size_t total = 0;
  std::vector<TrajIndex> out;
  for (TrajIndex i = 0; i < set.size(); ++i) {
    out.clear();
    lig.CollectCandidates(i, &out);
    total += out.size();
  }
  size_t all_pairs = set.size() * (set.size() - 1);
  EXPECT_LT(total, all_pairs / 4) << "index prunes too little";
}

TEST(LigTest, EmptyOutputForSingletonSet) {
  std::vector<TrackingRecord> records = {{"only", 0, 10}};
  TrajectorySet set = TrajectorySet::FromRecords(records);
  LengthIndexedGrids lig(set, SmallOptions());
  EXPECT_TRUE(Candidates(lig, 0).empty());
}

// ---- Incremental maintenance (Insert/Remove, dynamic representation) ----
//
// The streaming engine leans on two fixed points: removing and re-inserting
// every member of a built index reproduces its serialized state bit for
// bit, and a dynamic index fed one member at a time linearizes to exactly
// the CSR a from-scratch build produces. ToParts() is the canonical
// comparison surface (it is also what snapshots persist).

void ExpectSameParts(const LengthIndexedGrids::Parts& got,
                     const LengthIndexedGrids::Parts& want) {
  EXPECT_EQ(got.base_time, want.base_time);
  EXPECT_EQ(got.num_bins, want.num_bins);
  EXPECT_EQ(got.band, want.band);
  EXPECT_EQ(got.num_indexed, want.num_indexed);
  EXPECT_EQ(got.cell_offsets, want.cell_offsets);
  EXPECT_EQ(got.cell_entries, want.cell_entries);
}

/// A set that walks the indexability boundaries of SmallOptions (θ=4,
/// η=600, tb=60): lengths exactly at and beyond θ, spans exactly at and
/// beyond η, and a start landing exactly on a time-bin edge.
TrajectorySet MakeBoundarySet() {
  std::vector<TrackingRecord> records = {
      // len 4 == θ: indexed (a from-scratch build keeps it, so the
      // incremental ops must agree), though no probe can pair with it.
      {"at_theta", 0, 0},
      {"at_theta", 1, 100},
      {"at_theta", 2, 200},
      {"at_theta", 3, 300},
      // len 5 > θ: never indexed.
      {"over_theta", 0, 10},
      {"over_theta", 1, 110},
      {"over_theta", 2, 210},
      {"over_theta", 3, 310},
      {"over_theta", 4, 410},
      // span exactly η: indexed.
      {"at_eta", 0, 20},
      {"at_eta", 1, 620},
      // span η+1: never indexed.
      {"over_eta", 0, 30},
      {"over_eta", 1, 631},
      // start exactly on a bin boundary (600 = 10·tb).
      {"bin_edge", 2, 600},
  };
  return TrajectorySet::FromRecords(records);
}

TEST(LigTest, RemoveInsertRoundTripIsFixedPoint) {
  for (bool boundary : {false, true}) {
    SCOPED_TRACE(boundary ? "boundary set" : "small set");
    TrajectorySet set = boundary ? MakeBoundarySet() : MakeSmallSet();
    LengthIndexedGrids lig(set, SmallOptions());
    LengthIndexedGrids::Parts before = lig.ToParts();
    for (TrajIndex i = 0; i < set.size(); ++i) {
      // Remove and Insert agree, member by member, on what a from-scratch
      // build would index; a round trip restores the exact entry layout.
      bool removed = lig.Remove(i);
      EXPECT_EQ(lig.Insert(i), removed) << "trajectory " << i;
    }
    ExpectSameParts(lig.ToParts(), before);
  }
}

TEST(LigTest, DynamicBuildMatchesConstructorBuild) {
  TrajectorySet set = MakeSmallSet();
  LengthIndexedGrids built(set, SmallOptions());

  LengthIndexedGrids dynamic = LengthIndexedGrids::Dynamic(SmallOptions(), 0);
  // Insertion order must not matter: feed spans newest-first.
  for (TrajIndex i = set.size(); i-- > 0;) {
    const Trajectory& t = set.at(i);
    EXPECT_TRUE(dynamic.InsertSpan(i, t.size(), t.start_time(), t.end_time()));
  }
  ExpectSameParts(dynamic.ToParts(), built.ToParts());
}

TEST(LigTest, DuplicateInsertAndAbsentRemoveAreRejected) {
  TrajectorySet set = MakeSmallSet();
  LengthIndexedGrids lig(set, SmallOptions());
  EXPECT_FALSE(lig.Insert(0));  // already present from the build
  ASSERT_TRUE(lig.Remove(0));
  EXPECT_FALSE(lig.Remove(0));  // already gone
  ASSERT_TRUE(lig.Insert(0));
  EXPECT_EQ(lig.num_indexed(), set.size());
}

TEST(LigTest, BoundarySpansIndexAndProbeConsistently) {
  TrajectorySet set = MakeBoundarySet();
  LengthIndexedGrids lig(set, SmallOptions());
  auto idx = set.BuildIdIndex();
  // Unindexable members reject both Remove (absent) and re-Insert.
  for (const char* id : {"over_theta", "over_eta"}) {
    SCOPED_TRACE(id);
    EXPECT_FALSE(lig.Remove(idx.at(id)));
    EXPECT_FALSE(lig.Insert(idx.at(id)));
  }
  // A span probe at the η boundary still sees the boundary entries: probe
  // as a length-1 fragment starting where "bin_edge" does.
  std::vector<TrajIndex> out;
  lig.CollectCandidatesSpan(1, 600, 600, &out);
  std::set<TrajIndex> got(out.begin(), out.end());
  EXPECT_EQ(got.count(idx.at("at_eta")), 1u);
  // Indexed at length θ, but a join with any probe would exceed θ records —
  // the grid's length criterion excludes it from every probe's answer.
  EXPECT_EQ(got.count(idx.at("at_theta")), 0u);
  // Span probes do not self-exclude: the indexed bin_edge entry appears in
  // its own geometry's answer (streaming callers de-index first).
  EXPECT_EQ(got.count(idx.at("bin_edge")), 1u);
}

}  // namespace
}  // namespace idrepair
