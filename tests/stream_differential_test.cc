// Batch-equivalence differential tier for the incremental streaming engine.
//
// The StreamingRepairer maintains its repair state record by record (dynamic
// LIG, incremental Gm adjacency, per-component cached candidate state); the
// contract making that safe is that every repair it runs over a window of
// records is *byte-identical* to what the batch IdRepairer produces over
// exactly those records. This suite pins that contract window by window —
// the engine captures each (records, repaired) pair it processes and we
// replay every window through a fresh batch pipeline — across graph shapes,
// eviction patterns, and thread counts, and locks the amortized-cost claim
// (settled components are never regenerated) with the generation-run
// counter.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "gen/synthetic.h"
#include "graph/generators.h"
#include "repair/repairer.h"
#include "stream/streaming_repairer.h"
#include "test_util.h"
#include "traj/trajectory_set.h"

namespace idrepair {
namespace {

using testutil::HMS;

struct StreamScenario {
  std::string name;
  TransitionGraph graph;
  std::vector<TrackingRecord> records;  // (ts, id, loc) ascending
  RepairOptions options;
};

std::vector<StreamScenario> MakeStreamScenarios() {
  struct Shape {
    const char* name;
    TransitionGraph graph;
    size_t theta;
    int64_t travel_lo, travel_hi;
  };
  std::vector<Shape> shapes;
  shapes.push_back({"paper", MakePaperExampleGraph(), 5, 60, 180});
  shapes.push_back({"chain8", MakeChainGraph(8), 8, 30, 60});
  shapes.push_back({"grid", MakeGridNetwork(3, 4), 6, 30, 90});

  std::vector<StreamScenario> scenarios;
  uint64_t seed = 7000;
  for (auto& shape : shapes) {
    SyntheticConfig config;
    config.num_trajectories = 80;
    config.record_error_rate = 0.2;
    config.max_path_len = shape.theta;
    config.window_seconds = 3600;
    config.travel_median_lo = shape.travel_lo;
    config.travel_median_hi = shape.travel_hi;
    config.seed = ++seed;
    auto ds = GenerateSyntheticDataset(shape.graph, config);
    if (!ds.ok()) {
      ADD_FAILURE() << shape.name << ": " << ds.status();
      continue;
    }
    StreamScenario s;
    s.name = shape.name;
    s.graph = shape.graph;
    s.options.theta = shape.theta;
    s.options.eta = 600;
    TrajectorySet set = ds->BuildObservedTrajectories();
    for (TrajIndex i = 0; i < set.size(); ++i) {
      for (const auto& p : set.at(i).points()) {
        s.records.push_back(TrackingRecord{set.at(i).id(), p.loc, p.ts});
      }
    }
    std::sort(s.records.begin(), s.records.end(),
              [](const TrackingRecord& a, const TrackingRecord& b) {
                return std::tie(a.ts, a.id, a.loc) <
                       std::tie(b.ts, b.id, b.loc);
              });
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

/// How the stream is driven — each pattern exercises a different eviction
/// path through the engine (settled emission, forced horizon flush with
/// deferral and component splits, and the full-drain Finish).
struct EvictionPattern {
  const char* name;
  double flush_horizon_multiplier;
  size_t poll_every;  // records between Poll() calls; 0 = Finish only
};

const EvictionPattern kPatterns[] = {
    {"settle_cadence", 4.0, 25},
    {"forced_horizon", 1.0, 10},
    {"finish_only", 2.0, 0},
};

size_t TotalPoints(const std::vector<Trajectory>& trajectories) {
  size_t n = 0;
  for (const auto& t : trajectories) n += t.size();
  return n;
}

void ExpectSameTrajectories(const std::vector<Trajectory>& got,
                            const std::vector<Trajectory>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id(), want[i].id()) << "trajectory " << i;
    ASSERT_EQ(got[i].size(), want[i].size()) << "trajectory " << i;
    for (size_t j = 0; j < got[i].size(); ++j) {
      EXPECT_EQ(got[i].points()[j].loc, want[i].points()[j].loc)
          << "trajectory " << i << " point " << j;
      EXPECT_EQ(got[i].points()[j].ts, want[i].points()[j].ts)
          << "trajectory " << i << " point " << j;
    }
  }
}

/// Drives one scenario/pattern/thread combination and returns everything
/// the stream emitted, asserting the per-window batch equivalence on the
/// way through.
void RunAndVerify(const StreamScenario& s, const EvictionPattern& pattern,
                  int threads, std::vector<Trajectory>* emitted_out) {
  RepairOptions options = s.options;
  options.exec.num_threads = threads;
  StreamOptions stream_options;
  stream_options.flush_horizon_multiplier = pattern.flush_horizon_multiplier;
  StreamingRepairer stream(s.graph, options, stream_options);
  stream.set_capture_windows(true);

  std::vector<Trajectory> emitted;
  size_t since_poll = 0;
  for (const auto& r : s.records) {
    Status appended = stream.Append(r);
    ASSERT_TRUE(appended.ok()) << appended;
    if (pattern.poll_every > 0 && ++since_poll >= pattern.poll_every) {
      since_poll = 0;
      auto out = stream.Poll();
      emitted.insert(emitted.end(), out.begin(), out.end());
    }
  }
  auto tail = stream.Finish();
  emitted.insert(emitted.end(), tail.begin(), tail.end());

  // Nothing buffered, nothing lost: eviction conserves records exactly.
  EXPECT_EQ(stream.pending_records(), 0u);
  EXPECT_EQ(TotalPoints(emitted), s.records.size());
  EXPECT_EQ(stream.emitted_trajectories(), emitted.size());

  // Every window the engine repaired — settled, forced, or drained by
  // Finish — must reproduce the batch pipeline over exactly those records.
  const auto& windows = stream.captured_windows();
  EXPECT_FALSE(windows.empty());
  IdRepairer batch(s.graph, options);
  for (size_t w = 0; w < windows.size(); ++w) {
    SCOPED_TRACE("window " + std::to_string(w) +
                 (windows[w].forced ? " (forced)" : " (settled)"));
    ASSERT_FALSE(windows[w].degraded);
    TrajectorySet window_set = TrajectorySet::FromRecords(windows[w].records);
    auto ref = batch.Repair(window_set);
    ASSERT_TRUE(ref.ok()) << ref.status();
    ExpectSameTrajectories(windows[w].repaired,
                           ref->repaired.trajectories());
  }
  *emitted_out = std::move(emitted);
}

TEST(StreamDifferentialTest, WindowsAreByteIdenticalToBatch) {
  for (const StreamScenario& s : MakeStreamScenarios()) {
    for (const EvictionPattern& pattern : kPatterns) {
      // The emitted stream must also be invariant across thread counts:
      // the incremental layer is single-threaded and the inner pipeline is
      // deterministic, so parallelism may change timing only.
      std::vector<Trajectory> single;
      for (int threads : {1, 2, 8}) {
        SCOPED_TRACE(s.name + std::string("/") + pattern.name +
                     "/threads=" + std::to_string(threads));
        std::vector<Trajectory> emitted;
        RunAndVerify(s, pattern, threads, &emitted);
        if (testing::Test::HasFatalFailure()) return;
        if (threads == 1) {
          single = std::move(emitted);
        } else {
          ExpectSameTrajectories(emitted, single);
        }
      }
    }
  }
}

// The amortized-cost contract behind the incremental design: once a
// component has settled (and been emitted), appends to a *different*
// component never re-run candidate generation for it. Equivalently, the
// generation-run counter tracks the number of distinct repaired windows,
// not the number of appends or polls.
TEST(StreamDifferentialTest, AppendsDoNotRegenerateSettledComponents) {
  auto graph = MakePaperExampleGraph();
  RepairOptions options = testutil::RunningExampleOptions();  // θ=5, η=1200
  StreamingRepairer stream(graph, options);

  for (const auto& r : testutil::MakeTable1Records()) {
    ASSERT_TRUE(stream.Append(r).ok());
  }
  // A far-future record settles the running-example component.
  ASSERT_TRUE(stream.Append({"Z0", 0, HMS(12, 0, 0)}).ok());
  auto settled = stream.Poll();
  EXPECT_FALSE(settled.empty());
  const size_t runs_after_first = stream.generation_runs();
  EXPECT_GE(runs_after_first, 1u);

  // Grow the second component append by append, polling constantly. The
  // polls see only a live, unsettled component — no window is repaired, so
  // the counter must not move no matter how many records arrive.
  Timestamp ts = HMS(12, 0, 0);
  const LocationId locs[] = {1, 2, 3};
  for (int i = 0; i < 30; ++i) {
    ts += 30;
    ASSERT_TRUE(
        stream.Append({"Z" + std::to_string(i % 3), locs[i % 3], ts}).ok());
    stream.Poll();
  }
  EXPECT_EQ(stream.generation_runs(), runs_after_first);

  // Draining the stream repairs the one remaining component exactly once.
  auto tail = stream.Finish();
  EXPECT_FALSE(tail.empty());
  EXPECT_EQ(stream.generation_runs(), runs_after_first + 1);
  EXPECT_EQ(stream.pending_records(), 0u);
}

// A clean poll cadence reuses buffered records instead of regenerating
// them: the reuse counter grows whenever a poll leaves records untouched.
TEST(StreamDifferentialTest, QuietPollsReuseBufferedRecords) {
  auto graph = MakePaperExampleGraph();
  RepairOptions options = testutil::RunningExampleOptions();
  StreamingRepairer stream(graph, options);
  for (const auto& r : testutil::MakeTable1Records()) {
    ASSERT_TRUE(stream.Append(r).ok());
  }
  EXPECT_EQ(stream.records_reused(), 0u);
  stream.Poll();  // nothing settled: every pending record rides through
  EXPECT_EQ(stream.records_reused(), testutil::MakeTable1Records().size());
  EXPECT_EQ(stream.poll_count(), 1u);
}

// Bounded-buffer backpressure: a full buffer rejects the append without
// mutating any state, and the rejection is counted.
TEST(StreamDifferentialTest, MaxBufferedRejectsWithoutMutation) {
  auto graph = MakePaperExampleGraph();
  RepairOptions options = testutil::RunningExampleOptions();
  StreamOptions stream_options;
  stream_options.max_buffered = 3;
  StreamingRepairer stream(graph, options, stream_options);
  auto records = testutil::MakeTable1Records();
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(stream.Append(records[i]).ok());
  }
  Status rejected = stream.Append(records[3]);
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(stream.pending_records(), 3u);
  EXPECT_EQ(stream.appends_rejected(), 1u);
  EXPECT_EQ(stream.watermark(), records[2].ts);  // untouched by the reject

  // Draining restores capacity; the rejected record can be retried.
  stream.Finish();
  EXPECT_EQ(stream.pending_records(), 0u);
  ASSERT_TRUE(stream.Append(records[3]).ok());
  EXPECT_EQ(stream.pending_records(), 1u);
}

}  // namespace
}  // namespace idrepair
