#include <gtest/gtest.h>

#include "gen/real_like.h"
#include "graph/generators.h"
#include "test_util.h"
#include "traj/stats.h"

namespace idrepair {
namespace {

TEST(StatsTest, RunningExampleStats) {
  TransitionGraph g = MakePaperExampleGraph();
  TrajectorySet set = testutil::MakeTable2Trajectories();
  auto stats = ComputeStats(set, g);
  EXPECT_EQ(stats.num_trajectories, 3u);
  EXPECT_EQ(stats.num_records, 7u);
  EXPECT_EQ(stats.num_valid, 1u);
  EXPECT_EQ(stats.num_invalid, 2u);
  EXPECT_EQ(stats.min_length, 1u);
  EXPECT_EQ(stats.max_length, 4u);
  EXPECT_NEAR(stats.mean_length, 7.0 / 3.0, 1e-12);
  EXPECT_EQ(stats.min_span, 0);
  EXPECT_EQ(stats.max_span, 739);  // GL21348: 08:09:10 -> 08:21:29
  EXPECT_EQ(stats.length_histogram.at(1), 1u);
  EXPECT_EQ(stats.length_histogram.at(2), 1u);
  EXPECT_EQ(stats.length_histogram.at(4), 1u);
}

TEST(StatsTest, EmptySet) {
  TransitionGraph g = MakePaperExampleGraph();
  auto stats = ComputeStats(TrajectorySet{}, g);
  EXPECT_EQ(stats.num_trajectories, 0u);
  EXPECT_EQ(stats.num_records, 0u);
  // Describe must not crash on the empty case.
  EXPECT_FALSE(DescribeStats(stats).empty());
}

TEST(StatsTest, SuggestedBoundsCoverTheQuantile) {
  auto ds = MakeRealLikeDataset();
  ASSERT_TRUE(ds.ok());
  TrajectorySet set = ds->BuildObservedTrajectories();
  auto stats = ComputeStats(set, ds->graph, /*quantile=*/1.0);
  EXPECT_EQ(stats.suggested_theta, stats.max_length);
  EXPECT_EQ(stats.suggested_eta, stats.max_span);

  auto median = ComputeStats(set, ds->graph, /*quantile=*/0.5);
  EXPECT_LE(median.suggested_theta, stats.suggested_theta);
  EXPECT_LE(median.suggested_eta, stats.suggested_eta);
  EXPECT_GE(median.suggested_theta, stats.min_length);
}

TEST(StatsTest, SpanHistogramUsesBuckets) {
  std::vector<TrackingRecord> records = {
      {"a", 0, 0},  {"a", 1, 65},   // span 65  -> bucket 60
      {"b", 0, 10}, {"b", 1, 40},   // span 30  -> bucket 0
      {"c", 0, 20},                 // span 0   -> bucket 0
  };
  TransitionGraph g = MakeRealLikeGraph();
  TrajectorySet set = TrajectorySet::FromRecords(records);
  auto stats = ComputeStats(set, g, 0.99, /*span_bucket=*/60);
  EXPECT_EQ(stats.span_histogram.at(0), 2u);
  EXPECT_EQ(stats.span_histogram.at(60), 1u);
}

TEST(StatsTest, DescribeMentionsKeyNumbers) {
  TransitionGraph g = MakePaperExampleGraph();
  TrajectorySet set = testutil::MakeTable2Trajectories();
  std::string text = DescribeStats(ComputeStats(set, g));
  EXPECT_NE(text.find("trajectories: 3"), std::string::npos);
  EXPECT_NE(text.find("records: 7"), std::string::npos);
  EXPECT_NE(text.find("1 valid"), std::string::npos);
}

}  // namespace
}  // namespace idrepair
