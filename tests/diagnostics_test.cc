#include <gtest/gtest.h>

#include "eval/diagnostics.h"
#include "eval/metrics.h"
#include "gen/real_like.h"
#include "gen/synthetic.h"
#include "graph/generators.h"
#include "repair/repairer.h"

namespace idrepair {
namespace {

RepairOptions RealOptions() {
  RepairOptions o;
  o.theta = 4;
  o.eta = 600;
  return o;
}

TEST(DiagnosticsTest, CleanRunHasNothingToExplain) {
  TransitionGraph graph = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 80;
  config.max_path_len = 4;
  config.record_error_rate = 0.0;
  auto ds = GenerateSyntheticDataset(graph, config);
  ASSERT_TRUE(ds.ok());
  TrajectorySet set = ds->BuildObservedTrajectories();
  IdRepairer repairer(graph, RealOptions());
  auto result = repairer.Repair(set);
  ASSERT_TRUE(result.ok());
  auto diag = DiagnoseRepair(*ds, set, *result, RealOptions());
  EXPECT_EQ(diag.total_erroneous(), 0u);
}

TEST(DiagnosticsTest, AccountsForEveryErroneousTrajectory) {
  auto ds = MakeRealLikeDataset();
  ASSERT_TRUE(ds.ok());
  TrajectorySet set = ds->BuildObservedTrajectories();
  IdRepairer repairer(ds->graph, RealOptions());
  auto result = repairer.Repair(set);
  ASSERT_TRUE(result.ok());
  auto diag = DiagnoseRepair(*ds, set, *result, RealOptions());

  auto truth = ComputeFragmentTruth(*ds, set);
  auto metrics = EvaluateRewrites(truth, set, result->rewrites);
  EXPECT_EQ(diag.total_erroneous(), metrics.num_erroneous);
  // The histogram partitions the erroneous set.
  size_t histogram_total = 0;
  for (size_t c : diag.counts) histogram_total += c;
  EXPECT_EQ(histogram_total, diag.total_erroneous());
  // "fixed" must agree with the metric's correct count restricted to
  // erroneous trajectories (every correct rewrite targets one).
  EXPECT_EQ(diag.counts[static_cast<size_t>(FailureReason::kFixed)],
            metrics.num_correct);
}

TEST(DiagnosticsTest, FlagsEtaViolations) {
  // An entity whose fragments span more than η can never be reassembled.
  Dataset ds;
  ds.graph = MakeRealLikeGraph();
  ds.records = {
      {"slowcar", "slowcar", 0, 0},     // A
      {"slowcar", "slowcar", 1, 300},   // B
      {"slowcar", "xlowcar", 3, 5000},  // D, corrupted, far beyond η
  };
  TrajectorySet set = ds.BuildObservedTrajectories();
  IdRepairer repairer(ds.graph, RealOptions());
  auto result = repairer.Repair(set);
  ASSERT_TRUE(result.ok());
  auto diag = DiagnoseRepair(ds, set, *result, RealOptions());
  ASSERT_EQ(diag.total_erroneous(), 1u);
  EXPECT_EQ(diag.reasons[0], FailureReason::kEntitySpanExceedsEta);
}

TEST(DiagnosticsTest, FlagsThetaViolations) {
  // Five records can never fit θ=4.
  Dataset ds;
  ds.graph = MakePaperExampleGraph();
  ds.records = {
      {"e", "e", 0, 0},   {"e", "e", 1, 60},  {"e", "x", 2, 120},
      {"e", "e", 3, 180}, {"e", "e", 4, 240},
  };
  RepairOptions options;
  options.theta = 4;
  options.eta = 600;
  TrajectorySet set = ds.BuildObservedTrajectories();
  IdRepairer repairer(ds.graph, options);
  auto result = repairer.Repair(set);
  ASSERT_TRUE(result.ok());
  auto diag = DiagnoseRepair(ds, set, *result, options);
  ASSERT_EQ(diag.total_erroneous(), 1u);
  EXPECT_EQ(diag.reasons[0], FailureReason::kEntityLengthExceedsTheta);
}

TEST(DiagnosticsTest, FlagsZetaViolations) {
  // Entity fractured into 3 fragments; ζ=2 forbids reassembly.
  Dataset ds;
  ds.graph = MakePaperExampleGraph();
  ds.records = {
      {"e", "aaa", 0, 0},    // A corrupted
      {"e", "e", 1, 60},     // B
      {"e", "bbb", 3, 120},  // D corrupted
      {"e", "e", 4, 180},    // E -- wait, same id as B fragment
  };
  RepairOptions options;
  options.theta = 5;
  options.eta = 600;
  options.zeta = 2;
  TrajectorySet set = ds.BuildObservedTrajectories();
  IdRepairer repairer(ds.graph, options);
  auto result = repairer.Repair(set);
  ASSERT_TRUE(result.ok());
  auto diag = DiagnoseRepair(ds, set, *result, options);
  ASSERT_EQ(diag.total_erroneous(), 2u);
  for (auto reason : diag.reasons) {
    EXPECT_EQ(reason, FailureReason::kEntityFragmentsExceedZeta);
  }
}

TEST(DiagnosticsTest, FlagsWrongTargetTies) {
  // Entity C->D with the C record corrupted: two single-record fragments of
  // equal length tie in Eq. (5) and the earlier (corrupted) ID wins — the
  // systematic failure the diagnostics expose (DESIGN.md).
  Dataset ds;
  ds.graph = MakeRealLikeGraph();
  ds.records = {
      {"truecar", "zruecar", 2, 0},    // C corrupted
      {"truecar", "truecar", 3, 60},   // D
  };
  TrajectorySet set = ds.BuildObservedTrajectories();
  IdRepairer repairer(ds.graph, RealOptions());
  auto result = repairer.Repair(set);
  ASSERT_TRUE(result.ok());
  auto diag = DiagnoseRepair(ds, set, *result, RealOptions());
  ASSERT_EQ(diag.total_erroneous(), 1u);
  EXPECT_EQ(diag.reasons[0], FailureReason::kWrongTargetChosen);
}

TEST(DiagnosticsTest, DescribeListsNonZeroBuckets) {
  auto ds = MakeRealLikeDataset();
  ASSERT_TRUE(ds.ok());
  TrajectorySet set = ds->BuildObservedTrajectories();
  IdRepairer repairer(ds->graph, RealOptions());
  auto result = repairer.Repair(set);
  ASSERT_TRUE(result.ok());
  auto diag = DiagnoseRepair(*ds, set, *result, RealOptions());
  std::string text = diag.Describe();
  EXPECT_NE(text.find("erroneous trajectories:"), std::string::npos);
  EXPECT_NE(text.find("fixed:"), std::string::npos);
}

TEST(FailureReasonTest, AllReasonsHaveNames) {
  for (int i = 0; i <= 6; ++i) {
    EXPECT_STRNE(FailureReasonToString(static_cast<FailureReason>(i)),
                 "unknown");
  }
}

}  // namespace
}  // namespace idrepair
