// idrepaird end-to-end: the in-process daemon driven over real sockets
// through the client library. The load-bearing invariants:
//
//  * a repair through the daemon is byte-identical to the same repair run
//    locally through the library — the wire adds transport, never results;
//  * registry replacement is epoch-style: in-flight holders of the old
//    bundle keep a fully usable graph while new acquires see the new one;
//  * register -> snapshot -> kill -> restart --load-dir reproduces the
//    exact same repair output as the original process (load-not-rebuild,
//    attested by the resident-LIG reuse counter);
//  * admission control sheds whole requests with ResourceExhausted, and a
//    per-request budget lands on the engines' graceful-degradation path;
//  * garbage on the wire drops that connection with a clean Status and the
//    daemon keeps serving everyone else.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "gen/synthetic.h"
#include "graph/generators.h"
#include "graph/serialization.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "repair/repairer.h"
#include "server/client.h"
#include "server/registry.h"
#include "server/server.h"
#include "server/snapshot.h"
#include "test_util.h"

namespace idrepair {
namespace server {
namespace {

namespace fs = std::filesystem;

std::string PaperGraphText() {
  std::ostringstream out;
  EXPECT_TRUE(WriteTransitionGraph(out, MakePaperExampleGraph()).ok());
  return std::move(out).str();
}

std::vector<TrackingRecord> FlattenSet(const TrajectorySet& set) {
  std::vector<TrackingRecord> records;
  for (const Trajectory& t : set.trajectories()) {
    for (const TrajectoryPoint& p : t.points()) {
      records.push_back(TrackingRecord{t.id(), p.loc, p.ts});
    }
  }
  return records;
}

/// What the daemon should hand back for `records`: the local library run,
/// flattened exactly as BatchReply flattens.
std::vector<TrackingRecord> LocalRepair(
    const std::vector<TrackingRecord>& records, const RepairOptions& options,
    const TransitionGraph& graph) {
  IdRepairer engine(graph, options);
  auto result = engine.Repair(TrajectorySet::FromRecords(records));
  EXPECT_TRUE(result.ok()) << result.status();
  return FlattenSet(result->repaired);
}

uint64_t CounterValue(const std::string& name) {
  for (const auto& m : obs::MetricsRegistry::Global().Collect()) {
    if (m.name == name) return m.counter_value;
  }
  return 0;
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = fs::temp_directory_path() /
            ("idrepair_server_test_" + tag + "_" +
             std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  fs::path path_;
};

// ---- GraphRegistry -----------------------------------------------------

TEST(GraphRegistryTest, ValidateNameRules) {
  EXPECT_TRUE(GraphRegistry::ValidateName("metro-v2.1_east").ok());
  EXPECT_FALSE(GraphRegistry::ValidateName("").ok());
  EXPECT_FALSE(GraphRegistry::ValidateName(".hidden").ok());
  EXPECT_FALSE(GraphRegistry::ValidateName("has space").ok());
  EXPECT_FALSE(GraphRegistry::ValidateName("slash/attack").ok());
  EXPECT_FALSE(GraphRegistry::ValidateName(std::string(129, 'a')).ok());
  EXPECT_TRUE(GraphRegistry::ValidateName(std::string(128, 'a')).ok());
}

TEST(GraphRegistryTest, AcquireUnknownIsNotFound) {
  GraphRegistry registry;
  auto r = registry.Acquire("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(GraphRegistryTest, ReplacementIsEpochStyle) {
  GraphRegistry registry;
  auto v1 = registry.Register("g", MakePaperExampleGraph(),
                              testutil::RunningExampleOptions(),
                              testutil::MakeTable1Records());
  ASSERT_TRUE(v1.ok()) << v1.status();
  EXPECT_EQ(*v1, 1u);

  auto held = registry.Acquire("g");
  ASSERT_TRUE(held.ok());

  // Replace with a different graph while the old bundle is "in flight".
  auto v2 = registry.Register("g", MakeChainGraph(9),
                              testutil::RunningExampleOptions(), {});
  ASSERT_TRUE(v2.ok()) << v2.status();
  EXPECT_EQ(*v2, 2u);

  // The held epoch is untouched and fully usable.
  EXPECT_EQ((*held)->version, 1u);
  EXPECT_EQ((*held)->graph.num_locations(), 5u);
  ASSERT_NE((*held)->corpus, nullptr);
  IdRepairer engine((*held)->graph, (*held)->options);
  EXPECT_TRUE(engine.Repair(*(*held)->corpus).ok());

  // New acquires see the new epoch.
  auto fresh = registry.Acquire("g");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ((*fresh)->version, 2u);
  EXPECT_EQ((*fresh)->graph.num_locations(), 9u);
}

TEST(GraphRegistryTest, InsertKeepsNewestVersion) {
  GraphRegistry registry;
  auto v2 = MakeBundle("g", 2, MakePaperExampleGraph(),
                       testutil::RunningExampleOptions(), {});
  ASSERT_TRUE(v2.ok());
  auto v1 = MakeBundle("g", 1, MakeChainGraph(3),
                       testutil::RunningExampleOptions(), {});
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(registry.Insert(*v2).ok());
  // A stale snapshot must never roll an entry back.
  ASSERT_TRUE(registry.Insert(*v1).ok());
  auto got = registry.Acquire("g");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->version, 2u);
  EXPECT_EQ((*got)->graph.num_locations(), 5u);
}

TEST(GraphRegistryTest, SaveAndLoadDirRoundTrip) {
  TempDir dir("registry_rt");
  GraphRegistry registry;
  ASSERT_TRUE(registry
                  .Register("alpha", MakePaperExampleGraph(),
                            testutil::RunningExampleOptions(),
                            testutil::MakeTable1Records())
                  .ok());
  ASSERT_TRUE(registry
                  .Register("beta", MakeGridNetwork(3, 3),
                            testutil::RunningExampleOptions(), {})
                  .ok());
  auto saved = registry.SaveSnapshots(dir.str());
  ASSERT_TRUE(saved.ok()) << saved.status();
  EXPECT_EQ(*saved, 2u);

  GraphRegistry loaded;
  auto n = loaded.LoadDir(dir.str());
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 2u);
  EXPECT_EQ(loaded.size(), 2u);
  auto alpha = loaded.Acquire("alpha");
  ASSERT_TRUE(alpha.ok());
  ASSERT_NE((*alpha)->lig, nullptr);
  EXPECT_EQ((*alpha)->corpus->total_records(), 7u);

  // A corrupt file in the directory fails the whole load with a clean
  // Status naming the file — a daemon must not start on half a registry.
  std::ofstream bad(dir.path() / "zz_corrupt.idrs", std::ios::binary);
  bad << "not a snapshot";
  bad.close();
  GraphRegistry partial;
  auto fail = partial.LoadDir(dir.str());
  ASSERT_FALSE(fail.ok());
  EXPECT_NE(fail.status().message().find("zz_corrupt"), std::string::npos)
      << fail.status();
}

// ---- Addresses ---------------------------------------------------------

TEST(AddressTest, ParseFormats) {
  auto unix_addr = ParseAddress("unix:/tmp/x.sock");
  ASSERT_TRUE(unix_addr.ok());
  EXPECT_TRUE(unix_addr->is_unix);
  EXPECT_EQ(unix_addr->path, "/tmp/x.sock");

  auto host_port = ParseAddress("tcp:127.0.0.1:8080");
  ASSERT_TRUE(host_port.ok());
  EXPECT_FALSE(host_port->is_unix);
  EXPECT_EQ(host_port->host, "127.0.0.1");
  EXPECT_EQ(host_port->port, 8080);

  auto port_only = ParseAddress("tcp:9090");
  ASSERT_TRUE(port_only.ok());
  EXPECT_EQ(port_only->host, "127.0.0.1");
  EXPECT_EQ(port_only->port, 9090);

  for (const char* bad :
       {"", "tcp:", "tcp:host:notaport", "tcp:127.0.0.1:99999", "unix:",
        "ftp:1234", "tcp:1.2.3.4:-1"}) {
    EXPECT_FALSE(ParseAddress(bad).ok()) << bad;
  }
}

// ---- End-to-end over sockets -------------------------------------------

Result<std::unique_ptr<IdRepairServer>> StartLoopbackServer(
    ServerOptions options = {}) {
  options.listen = "tcp:127.0.0.1:0";
  return IdRepairServer::Start(std::move(options));
}

RegisterGraphRequest PaperRegisterRequest(const std::string& name,
                                          bool with_corpus) {
  RegisterGraphRequest req;
  req.name = name;
  req.graph_text = PaperGraphText();
  req.options = testutil::RunningExampleOptions();
  if (with_corpus) req.corpus = testutil::MakeTable1Records();
  return req;
}

TEST(ServerE2ETest, RepairThroughDaemonMatchesLocalRunByteForByte) {
  auto srv = StartLoopbackServer();
  ASSERT_TRUE(srv.ok()) << srv.status();
  auto client = RepairClient::Connect((*srv)->address());
  ASSERT_TRUE(client.ok()) << client.status();

  auto registered = client->RegisterGraph(PaperRegisterRequest("paper", false));
  ASSERT_TRUE(registered.ok()) << registered.status();
  EXPECT_EQ(registered->version, 1u);

  RepairRequest req;
  req.name = "paper";
  req.batches.push_back(testutil::MakeTable1Records());
  auto reply = client->Repair(req);
  ASSERT_TRUE(reply.ok()) << reply.status();
  ASSERT_EQ(reply->batches.size(), 1u);
  const BatchReply& batch = reply->batches[0];
  EXPECT_TRUE(batch.completion.ok()) << batch.completion;
  EXPECT_EQ(batch.num_rewrites, 1u);
  EXPECT_EQ(batch.repaired,
            LocalRepair(testutil::MakeTable1Records(),
                        testutil::RunningExampleOptions(),
                        MakePaperExampleGraph()));
  (*srv)->Stop();
}

TEST(ServerE2ETest, MultiBatchRepairKeepsRequestOrder) {
  auto srv = StartLoopbackServer();
  ASSERT_TRUE(srv.ok()) << srv.status();
  auto client = RepairClient::Connect((*srv)->address());
  ASSERT_TRUE(client.ok()) << client.status();
  ASSERT_TRUE(
      client->RegisterGraph(PaperRegisterRequest("paper", false)).ok());

  // Three distinguishable batches dispatched concurrently onto the pool;
  // replies must land in request order regardless of completion order.
  auto all = testutil::MakeTable1Records();
  std::vector<std::vector<TrackingRecord>> batches = {
      all,
      {all.begin(), all.begin() + 3},
      {all.begin() + 3, all.end()},
  };
  RepairRequest req;
  req.name = "paper";
  req.batches = batches;
  auto reply = client->Repair(req);
  ASSERT_TRUE(reply.ok()) << reply.status();
  ASSERT_EQ(reply->batches.size(), batches.size());
  for (size_t i = 0; i < batches.size(); ++i) {
    SCOPED_TRACE("batch " + std::to_string(i));
    EXPECT_TRUE(reply->batches[i].completion.ok());
    EXPECT_EQ(reply->batches[i].repaired,
              LocalRepair(batches[i], testutil::RunningExampleOptions(),
                          MakePaperExampleGraph()));
  }
  (*srv)->Stop();
}

TEST(ServerE2ETest, CorpusRepairReusesResidentLigIndex) {
  obs::SetEnabled(true);
  auto srv = StartLoopbackServer();
  ASSERT_TRUE(srv.ok()) << srv.status();
  auto client = RepairClient::Connect((*srv)->address());
  ASSERT_TRUE(client.ok()) << client.status();
  ASSERT_TRUE(client->RegisterGraph(PaperRegisterRequest("paper", true)).ok());

  uint64_t reuses_before =
      CounterValue("idrepair_gm_resident_lig_reuse_total");
  RepairRequest req;
  req.name = "paper";
  req.use_corpus = true;
  auto reply = client->Repair(req);
  ASSERT_TRUE(reply.ok()) << reply.status();
  ASSERT_EQ(reply->batches.size(), 1u);
  EXPECT_EQ(reply->batches[0].repaired,
            LocalRepair(testutil::MakeTable1Records(),
                        testutil::RunningExampleOptions(),
                        MakePaperExampleGraph()));
  // The run consulted the bundle's prebuilt index instead of rebuilding.
  EXPECT_GT(CounterValue("idrepair_gm_resident_lig_reuse_total"),
            reuses_before);
  (*srv)->Stop();
}

TEST(ServerE2ETest, RegisterSnapshotKillRestartRepairIsByteIdentical) {
  TempDir dir("kill_restart");
  std::vector<TrackingRecord> fresh_local;
  std::vector<TrackingRecord> before_kill;

  {
    auto srv = StartLoopbackServer();
    ASSERT_TRUE(srv.ok()) << srv.status();
    auto client = RepairClient::Connect((*srv)->address());
    ASSERT_TRUE(client.ok()) << client.status();
    ASSERT_TRUE(
        client->RegisterGraph(PaperRegisterRequest("paper", true)).ok());

    RepairRequest req;
    req.name = "paper";
    req.use_corpus = true;
    auto reply = client->Repair(req);
    ASSERT_TRUE(reply.ok()) << reply.status();
    before_kill = reply->batches.at(0).repaired;

    SnapshotRequest snap;
    snap.dir = dir.str();
    auto saved = client->Snapshot(snap);
    ASSERT_TRUE(saved.ok()) << saved.status();
    EXPECT_EQ(saved->num_saved, 1u);

    // Kill: Stop() tears the daemon down without any extra persistence —
    // only the explicit snapshot above survives.
    (*srv)->Stop();
  }

  fresh_local = LocalRepair(testutil::MakeTable1Records(),
                            testutil::RunningExampleOptions(),
                            MakePaperExampleGraph());

  {
    ServerOptions options;
    options.load_dir = dir.str();
    auto srv = StartLoopbackServer(std::move(options));
    ASSERT_TRUE(srv.ok()) << srv.status();
    EXPECT_EQ((*srv)->registry().size(), 1u);

    auto client = RepairClient::Connect((*srv)->address());
    ASSERT_TRUE(client.ok()) << client.status();
    RepairRequest req;
    req.name = "paper";
    req.use_corpus = true;
    auto reply = client->Repair(req);
    ASSERT_TRUE(reply.ok()) << reply.status();
    const auto& restarted = reply->batches.at(0).repaired;
    EXPECT_EQ(restarted, before_kill);
    EXPECT_EQ(restarted, fresh_local);
    (*srv)->Stop();
  }
}

TEST(ServerE2ETest, AdmissionControlShedsWholeRequests) {
  ServerOptions options;
  options.max_inflight = 0;  // everything over the bound -> shed
  auto srv = StartLoopbackServer(std::move(options));
  ASSERT_TRUE(srv.ok()) << srv.status();
  auto client = RepairClient::Connect((*srv)->address());
  ASSERT_TRUE(client.ok()) << client.status();
  ASSERT_TRUE(
      client->RegisterGraph(PaperRegisterRequest("paper", false)).ok());

  RepairRequest req;
  req.name = "paper";
  req.batches.push_back(testutil::MakeTable1Records());
  auto reply = client->Repair(req);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kResourceExhausted);

  AdmissionStats stats = (*srv)->admission();
  EXPECT_EQ(stats.admitted, 0u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.inflight, 0);

  // An empty repair request carries zero batches and sails through even at
  // max_inflight=0 (nothing to shed).
  RepairRequest empty;
  empty.name = "paper";
  auto ok = client->Repair(empty);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_TRUE(ok->batches.empty());
  (*srv)->Stop();
}

TEST(ServerE2ETest, BudgetMapsOntoGracefulDeadlineDegradation) {
  auto srv = StartLoopbackServer();
  ASSERT_TRUE(srv.ok()) << srv.status();
  auto client = RepairClient::Connect((*srv)->address());
  ASSERT_TRUE(client.ok()) << client.status();

  RegisterGraphRequest reg;
  reg.name = "big";
  std::ostringstream graph_text;
  ASSERT_TRUE(WriteTransitionGraph(graph_text, MakeRealLikeGraph()).ok());
  reg.graph_text = graph_text.str();
  reg.options = RepairOptions().WithTheta(6).WithEta(600);
  ASSERT_TRUE(client->RegisterGraph(reg).ok());

  SyntheticConfig config;
  config.num_trajectories = 2000;
  config.record_error_rate = 0.25;
  config.seed = 77;
  auto dataset = GenerateSyntheticDataset(MakeRealLikeGraph(), config);
  ASSERT_TRUE(dataset.ok()) << dataset.status();

  RepairRequest req;
  req.name = "big";
  req.budget_ms = 1;  // far below this workload's runtime
  req.batches.push_back(dataset->ObservedRecords());
  auto reply = client->Repair(req);
  ASSERT_TRUE(reply.ok()) << reply.status();
  ASSERT_EQ(reply->batches.size(), 1u);
  const BatchReply& batch = reply->batches[0];
  // Budget expiry is graceful degradation, not an error: the batch reply
  // carries the DeadlineExceeded marker AND a complete record-conserving
  // passthrough result.
  EXPECT_EQ(batch.completion.code(), StatusCode::kDeadlineExceeded)
      << batch.completion;
  EXPECT_EQ(batch.repaired.size(), req.batches[0].size());
  (*srv)->Stop();
}

TEST(ServerE2ETest, StatsReflectRegistryAndAdmission) {
  auto srv = StartLoopbackServer();
  ASSERT_TRUE(srv.ok()) << srv.status();
  auto client = RepairClient::Connect((*srv)->address());
  ASSERT_TRUE(client.ok()) << client.status();
  ASSERT_TRUE(client->RegisterGraph(PaperRegisterRequest("paper", true)).ok());

  RepairRequest req;
  req.name = "paper";
  req.use_corpus = true;
  ASSERT_TRUE(client->Repair(req).ok());

  StatsRequest stats_req;
  auto stats = client->Stats(stats_req);
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_EQ(stats->entries.size(), 1u);
  EXPECT_EQ(stats->entries[0].name, "paper");
  EXPECT_EQ(stats->entries[0].version, 1u);
  EXPECT_EQ(stats->entries[0].num_locations, 5u);
  EXPECT_EQ(stats->entries[0].corpus_trajectories, 3u);
  EXPECT_EQ(stats->admission.admitted, 1u);
  EXPECT_EQ(stats->admission.completed, 1u);
  EXPECT_EQ(stats->admission.inflight, 0);
  EXPECT_EQ(stats->admission.max_inflight, 64u);
  EXPECT_TRUE(stats->prometheus.empty());

  StatsRequest with_prom;
  with_prom.include_prometheus = true;
  obs::SetEnabled(true);
  ASSERT_TRUE(client->Repair(req).ok());
  auto prom = client->Stats(with_prom);
  ASSERT_TRUE(prom.ok()) << prom.status();
  EXPECT_NE(prom->prometheus.find("idrepair_server_admitted_total"),
            std::string::npos)
      << prom->prometheus;
  (*srv)->Stop();
}

TEST(ServerE2ETest, ShutdownRequestWakesTheOwner) {
  auto srv = StartLoopbackServer();
  ASSERT_TRUE(srv.ok()) << srv.status();
  EXPECT_FALSE((*srv)->WaitForShutdownRequest(0));
  auto client = RepairClient::Connect((*srv)->address());
  ASSERT_TRUE(client.ok()) << client.status();
  ASSERT_TRUE(client->Shutdown().ok());
  EXPECT_TRUE((*srv)->WaitForShutdownRequest(5000));
  (*srv)->Stop();
}

TEST(ServerE2ETest, UnixSocketRoundTripAndCleanup) {
  TempDir dir("unix");
  std::string sock = (dir.path() / "d.sock").string();
  ServerOptions options;
  options.listen = "unix:" + sock;
  auto srv = IdRepairServer::Start(std::move(options));
  ASSERT_TRUE(srv.ok()) << srv.status();
  EXPECT_EQ((*srv)->address(), "unix:" + sock);

  auto client = RepairClient::Connect((*srv)->address());
  ASSERT_TRUE(client.ok()) << client.status();
  ASSERT_TRUE(
      client->RegisterGraph(PaperRegisterRequest("paper", false)).ok());
  RepairRequest req;
  req.name = "paper";
  req.batches.push_back(testutil::MakeTable1Records());
  auto reply = client->Repair(req);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->batches.at(0).repaired,
            LocalRepair(testutil::MakeTable1Records(),
                        testutil::RunningExampleOptions(),
                        MakePaperExampleGraph()));

  (*srv)->Stop();
  // Stop() unlinks the socket path.
  EXPECT_FALSE(fs::exists(sock));
}

TEST(ServerE2ETest, RepairOfUnknownNameIsNotFound) {
  auto srv = StartLoopbackServer();
  ASSERT_TRUE(srv.ok()) << srv.status();
  auto client = RepairClient::Connect((*srv)->address());
  ASSERT_TRUE(client.ok()) << client.status();
  RepairRequest req;
  req.name = "ghost";
  req.batches.push_back(testutil::MakeTable1Records());
  auto reply = client->Repair(req);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kNotFound);
  (*srv)->Stop();
}

TEST(ServerE2ETest, MalformedRegistrationsFailCleanly) {
  auto srv = StartLoopbackServer();
  ASSERT_TRUE(srv.ok()) << srv.status();
  auto client = RepairClient::Connect((*srv)->address());
  ASSERT_TRUE(client.ok()) << client.status();

  RegisterGraphRequest bad_graph = PaperRegisterRequest("paper", false);
  bad_graph.graph_text = "this is not a graph file";
  EXPECT_FALSE(client->RegisterGraph(bad_graph).ok());

  RegisterGraphRequest bad_name = PaperRegisterRequest("no/slashes", false);
  auto r = client->RegisterGraph(bad_name);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  RegisterGraphRequest bad_corpus = PaperRegisterRequest("paper", false);
  bad_corpus.corpus = {{"id", 999, 0}};  // unknown location id
  EXPECT_FALSE(client->RegisterGraph(bad_corpus).ok());

  // The connection survived every rejection.
  EXPECT_TRUE(client->RegisterGraph(PaperRegisterRequest("ok", false)).ok());
  (*srv)->Stop();
}

TEST(ServerE2ETest, WireGarbageDropsConnectionButDaemonSurvives) {
  auto srv = StartLoopbackServer();
  ASSERT_TRUE(srv.ok()) << srv.status();

  // Raw socket, no framing: the daemon must reject the junk and close this
  // connection without disturbing anyone else.
  auto address = ParseAddress((*srv)->address());
  ASSERT_TRUE(address.ok());
  auto fd = DialAddress(*address);
  ASSERT_TRUE(fd.ok()) << fd.status();
  const char junk[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_EQ(::write(*fd, junk, sizeof(junk)), (ssize_t)sizeof(junk));
  auto frame = ReadFrame(*fd, nullptr);
  EXPECT_FALSE(frame.ok());  // server closed on us
  ::close(*fd);

  // A frame with a valid magic but an absurd length is rejected before any
  // allocation; connection dropped the same way.
  auto fd2 = DialAddress(*address);
  ASSERT_TRUE(fd2.ok());
  std::string header;
  uint32_t magic = kFrameMagic;
  uint32_t huge = 0xFFFFFFFFu;
  header.append(reinterpret_cast<const char*>(&magic), 4);
  header.append(reinterpret_cast<const char*>(&huge), 4);
  header.push_back(1);
  ASSERT_EQ(::write(*fd2, header.data(), header.size()),
            (ssize_t)header.size());
  EXPECT_FALSE(ReadFrame(*fd2, nullptr).ok());
  ::close(*fd2);

  // The daemon keeps serving well-formed clients.
  auto client = RepairClient::Connect((*srv)->address());
  ASSERT_TRUE(client.ok()) << client.status();
  EXPECT_TRUE(
      client->RegisterGraph(PaperRegisterRequest("paper", false)).ok());
  (*srv)->Stop();
}

TEST(ServerE2ETest, StopIsIdempotentAndDestructorIsSafeAfterStop) {
  auto srv = StartLoopbackServer();
  ASSERT_TRUE(srv.ok()) << srv.status();
  (*srv)->Stop();
  (*srv)->Stop();
  srv->reset();  // destructor after explicit Stop
}

}  // namespace
}  // namespace server
}  // namespace idrepair
