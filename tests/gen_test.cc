#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/crc32.h"
#include "common/rng.h"
#include "gen/dataset.h"
#include "gen/error_model.h"
#include "gen/id_generator.h"
#include "gen/real_like.h"
#include "gen/synthetic.h"
#include "gen/travel_time.h"
#include "graph/generators.h"
#include "sim/edit_distance.h"

namespace idrepair {
namespace {

// --------------------------------------------------------- UniqueIdGenerator

TEST(UniqueIdGeneratorTest, ProducesLowercaseIdsOfConfiguredLength) {
  Rng rng(1);
  UniqueIdGenerator gen(7, 9);
  for (int i = 0; i < 500; ++i) {
    std::string id = gen.Next(rng);
    EXPECT_GE(id.size(), 7u);
    EXPECT_LE(id.size(), 9u);
    for (char c : id) {
      EXPECT_GE(c, 'a');
      EXPECT_LE(c, 'z');
    }
  }
}

TEST(UniqueIdGeneratorTest, NeverRepeats) {
  Rng rng(2);
  UniqueIdGenerator gen(7, 9);
  std::unordered_set<std::string> seen;
  for (int i = 0; i < 2000; ++i) {
    EXPECT_TRUE(seen.insert(gen.Next(rng)).second);
  }
}

TEST(UniqueIdGeneratorTest, ReserveBlocksAnId) {
  Rng rng(3);
  UniqueIdGenerator gen(1, 1);  // tiny space: collisions likely
  gen.Reserve("a");
  EXPECT_TRUE(gen.IsUsed("a"));
  for (int i = 0; i < 20; ++i) {
    EXPECT_NE(gen.Next(rng), "a");
  }
}

// -------------------------------------------------------------- TravelTime

TEST(TravelTimeModelTest, SamplesArePositive) {
  TravelTimeModel model;
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    EXPECT_GE(model.SampleSeconds(0, 1, rng), 1);
  }
}

TEST(TravelTimeModelTest, MedianIsDeterministicPerEdge) {
  TravelTimeModel model;
  EXPECT_EQ(model.MedianSeconds(0, 1), model.MedianSeconds(0, 1));
  EXPECT_GE(model.MedianSeconds(0, 1), 60.0);
  EXPECT_LE(model.MedianSeconds(0, 1), 180.0);
}

TEST(TravelTimeModelTest, SamplesCenterOnTheMedian) {
  TravelTimeModel model(/*sigma=*/0.35);
  Rng rng(5);
  double median = model.MedianSeconds(2, 3);
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(model.SampleSeconds(2, 3, rng));
  }
  // Log-normal mean = median * exp(sigma^2 / 2) ≈ median * 1.063.
  EXPECT_NEAR(sum / n, median * 1.063, median * 0.1);
}

// ------------------------------------------------------------- IdErrorModel

TEST(IdErrorModelTest, MutationAlwaysDiffers) {
  IdErrorModel model;
  Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    EXPECT_NE(model.Mutate("gl21348", rng), "gl21348");
  }
}

TEST(IdErrorModelTest, MutationDistanceFollowsDistribution) {
  ErrorDistanceDistribution dist;
  dist.probs_by_distance = {1.0};  // always one edit
  IdErrorModel model(dist);
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    std::string out = model.Mutate("abcdefgh", rng);
    EXPECT_EQ(EditDistance("abcdefgh", out), 1u);
  }
}

TEST(IdErrorModelTest, MutationDistanceUpperBounded) {
  IdErrorModel model;  // distances 1..4
  Rng rng(8);
  for (int i = 0; i < 300; ++i) {
    std::string out = model.Mutate("abcdefgh", rng);
    EXPECT_LE(EditDistance("abcdefgh", out), 4u);
    EXPECT_GE(EditDistance("abcdefgh", out), 1u);
  }
}

TEST(IdErrorModelTest, RespectsCollisionFilter) {
  IdErrorModel model;
  Rng rng(9);
  std::unordered_set<std::string> taken = {"aacdefgh", "bbcdefgh"};
  auto is_taken = [&](const std::string& s) { return taken.count(s) > 0; };
  for (int i = 0; i < 200; ++i) {
    std::string out = model.Mutate("abcdefgh", rng, is_taken);
    EXPECT_EQ(taken.count(out), 0u);
    EXPECT_NE(out, "abcdefgh");
  }
}

TEST(IdErrorModelTest, SingleCharIdsNeverBecomeEmpty) {
  IdErrorModel model;
  Rng rng(10);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(model.Mutate("a", rng).empty());
  }
}

// ----------------------------------------------------------- clean datasets

TEST(GenerateCleanDatasetTest, AllTrajectoriesValidAndComplete) {
  TransitionGraph g = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 200;
  config.max_path_len = 4;
  auto ds = GenerateCleanDataset(g, config);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->NumEntities(), 200u);
  EXPECT_DOUBLE_EQ(ds->RecordErrorRate(), 0.0);
  TrajectorySet set = ds->BuildObservedTrajectories();
  EXPECT_EQ(set.size(), 200u);
  for (const auto& t : set.trajectories()) {
    EXPECT_TRUE(t.IsValid(g)) << t.ToString(g);
  }
}

TEST(GenerateCleanDatasetTest, RecordsAreChronologicallySorted) {
  TransitionGraph g = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 100;
  config.max_path_len = 4;
  auto ds = GenerateCleanDataset(g, config);
  ASSERT_TRUE(ds.ok());
  for (size_t i = 0; i + 1 < ds->records.size(); ++i) {
    EXPECT_LE(ds->records[i].ts, ds->records[i + 1].ts);
  }
}

TEST(GenerateCleanDatasetTest, DeterministicBySeed) {
  TransitionGraph g = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 50;
  config.max_path_len = 4;
  config.seed = 77;
  auto a = GenerateCleanDataset(g, config);
  auto b = GenerateCleanDataset(g, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->records, b->records);
  config.seed = 78;
  auto c = GenerateCleanDataset(g, config);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->records, c->records);
}

TEST(GenerateCleanDatasetTest, PathWeightsMustMatchPathCount) {
  TransitionGraph g = MakeRealLikeGraph();
  SyntheticConfig config;
  config.path_weights = {0.5, 0.5};  // graph has 3 valid paths
  auto ds = GenerateCleanDataset(g, config);
  EXPECT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kInvalidArgument);
}

TEST(GenerateCleanDatasetTest, PathWeightsSkewPathChoice) {
  TransitionGraph g = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 300;
  config.max_path_len = 4;
  config.path_weights = {0.0, 0.0, 1.0};  // only C->D (2 records)
  auto ds = GenerateCleanDataset(g, config);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->records.size(), 600u);
}

TEST(GenerateCleanDatasetTest, RejectsGraphWithoutValidPaths) {
  TransitionGraph g;
  LocationId a = g.AddLocation("A");
  ASSERT_TRUE(g.MarkEntrance(a).ok());
  SyntheticConfig config;
  auto ds = GenerateCleanDataset(g, config);
  EXPECT_FALSE(ds.ok());
}

// ----------------------------------------------------------- error injection

TEST(InjectIdErrorsTest, RateIsApproximatelyHonored) {
  TransitionGraph g = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 2000;
  config.max_path_len = 4;
  auto ds = GenerateCleanDataset(g, config);
  ASSERT_TRUE(ds.ok());
  Rng rng(11);
  IdErrorModel model;
  InjectIdErrors(*ds, 0.2, model, rng);
  EXPECT_NEAR(ds->RecordErrorRate(), 0.2, 0.02);
}

TEST(InjectIdErrorsTest, ZeroRateChangesNothing) {
  TransitionGraph g = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 100;
  config.max_path_len = 4;
  auto ds = GenerateCleanDataset(g, config);
  ASSERT_TRUE(ds.ok());
  auto before = ds->records;
  Rng rng(12);
  IdErrorModel model;
  InjectIdErrors(*ds, 0.0, model, rng);
  EXPECT_EQ(ds->records, before);
}

TEST(InjectIdErrorsTest, CorruptedIdsNeverCollideWithTrueIds) {
  TransitionGraph g = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 500;
  config.max_path_len = 4;
  auto ds = GenerateCleanDataset(g, config);
  ASSERT_TRUE(ds.ok());
  std::unordered_set<std::string> true_ids;
  for (const auto& r : ds->records) true_ids.insert(r.true_id);
  Rng rng(13);
  IdErrorModel model;
  InjectIdErrors(*ds, 0.3, model, rng);
  for (const auto& r : ds->records) {
    if (r.corrupted()) {
      EXPECT_EQ(true_ids.count(r.observed_id), 0u) << r.observed_id;
    }
  }
}

TEST(InjectIdErrorsTest, ErrorsFractureTrajectories) {
  TransitionGraph g = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 300;
  config.max_path_len = 4;
  auto ds = GenerateCleanDataset(g, config);
  ASSERT_TRUE(ds.ok());
  Rng rng(14);
  IdErrorModel model;
  InjectIdErrors(*ds, 0.2, model, rng);
  TrajectorySet observed = ds->BuildObservedTrajectories();
  EXPECT_GT(observed.size(), 300u);  // fragments appeared
  EXPECT_EQ(observed.total_records(), ds->records.size());
}

// --------------------------------------------------------- missing injection

TEST(InjectMissingRecordsTest, RateIsApproximatelyHonored) {
  TransitionGraph g = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 2000;
  config.max_path_len = 4;
  auto ds = GenerateCleanDataset(g, config);
  ASSERT_TRUE(ds.ok());
  size_t before = ds->records.size();
  Rng rng(15);
  InjectMissingRecords(*ds, 0.1, rng);
  double removed =
      1.0 - static_cast<double>(ds->records.size()) /
                static_cast<double>(before);
  EXPECT_NEAR(removed, 0.1, 0.02);
}

TEST(InjectMissingRecordsTest, ZeroAndFullRates) {
  TransitionGraph g = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 50;
  config.max_path_len = 4;
  auto ds = GenerateCleanDataset(g, config);
  ASSERT_TRUE(ds.ok());
  size_t before = ds->records.size();
  Rng rng(16);
  InjectMissingRecords(*ds, 0.0, rng);
  EXPECT_EQ(ds->records.size(), before);
  InjectMissingRecords(*ds, 1.0, rng);
  EXPECT_TRUE(ds->records.empty());
}

// -------------------------------------------------- GenerateSyntheticDataset

TEST(GenerateSyntheticDatasetTest, ComposesAllStages) {
  TransitionGraph g = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 500;
  config.max_path_len = 4;
  config.record_error_rate = 0.15;
  config.record_missing_rate = 0.05;
  auto ds = GenerateSyntheticDataset(g, config);
  ASSERT_TRUE(ds.ok());
  EXPECT_NEAR(ds->RecordErrorRate(), 0.15, 0.04);
  EXPECT_LT(ds->records.size(), 500u * 4u);
}

TEST(GenerateSyntheticDatasetTest, ErrorRateDoesNotPerturbMissingStage) {
  // Changing the error rate must keep the *set of surviving record slots*
  // identical (independent per-stage RNG streams).
  TransitionGraph g = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 200;
  config.max_path_len = 4;
  config.record_missing_rate = 0.1;
  config.record_error_rate = 0.0;
  auto a = GenerateSyntheticDataset(g, config);
  config.record_error_rate = 0.2;
  auto b = GenerateSyntheticDataset(g, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->records.size(), b->records.size());
  for (size_t i = 0; i < a->records.size(); ++i) {
    EXPECT_EQ(a->records[i].true_id, b->records[i].true_id);
    EXPECT_EQ(a->records[i].loc, b->records[i].loc);
    EXPECT_EQ(a->records[i].ts, b->records[i].ts);
  }
}

// ------------------------------------------------- SyntheticConfig::Validated

TEST(SyntheticConfigValidatedTest, DefaultsAreValid) {
  auto config = SyntheticConfig().Validated();
  ASSERT_TRUE(config.ok()) << config.status();
  EXPECT_EQ(config->num_trajectories, SyntheticConfig().num_trajectories);
  EXPECT_EQ(config->seed, SyntheticConfig().seed);
}

TEST(SyntheticConfigValidatedTest, RejectsOutOfRangeFields) {
  auto expect_invalid = [](SyntheticConfig config, const char* what) {
    auto validated = config.Validated();
    ASSERT_FALSE(validated.ok()) << what;
    EXPECT_EQ(validated.status().code(), StatusCode::kInvalidArgument)
        << what << ": " << validated.status();
  };
  SyntheticConfig config;
  config.record_error_rate = 1.5;
  expect_invalid(config, "error rate > 1");
  config = SyntheticConfig();
  config.record_missing_rate = -0.1;
  expect_invalid(config, "negative missing rate");
  config = SyntheticConfig();
  config.max_path_len = 0;
  expect_invalid(config, "zero path length");
  config = SyntheticConfig();
  config.window_seconds = -1;
  expect_invalid(config, "negative window");
  config = SyntheticConfig();
  config.path_weights = {0.5, -0.5};
  expect_invalid(config, "negative path weight");
  config = SyntheticConfig();
  config.error_distances.probs_by_distance.clear();
  expect_invalid(config, "empty error distribution");
  config = SyntheticConfig();
  config.error_distances.probs_by_distance = {0.0, 0.0};
  expect_invalid(config, "all-zero error distribution");
  config = SyntheticConfig();
  config.travel_sigma = -0.1;
  expect_invalid(config, "negative travel sigma");
  config = SyntheticConfig();
  config.travel_median_lo = 120;
  config.travel_median_hi = 60;
  expect_invalid(config, "inverted travel median range");
}

TEST(SyntheticConfigValidatedTest, GenerationRejectsInvalidConfigLoudly) {
  TransitionGraph g = MakeRealLikeGraph();
  SyntheticConfig config;
  config.record_error_rate = 2.0;
  auto ds = GenerateSyntheticDataset(g, config);
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kInvalidArgument);
}

// -------------------------------------------------------- golden determinism

// Canonical byte serialization of a labeled record stream, for hashing.
std::string CanonicalRecordBytes(const Dataset& ds) {
  std::string bytes;
  for (const auto& r : ds.records) {
    bytes += r.true_id;
    bytes += '|';
    bytes += r.observed_id;
    bytes += '|';
    bytes += std::to_string(r.loc);
    bytes += '|';
    bytes += std::to_string(r.ts);
    bytes += '\n';
  }
  return bytes;
}

// The generator is a pure function of (graph, config): two runs in the
// same process must agree byte for byte, and the stream must match the
// golden checksum pinned below. The pin catches cross-build drift — an
// accidental reorder of RNG draws, a std::shuffle swapped in for the
// hand-rolled Fisher-Yates, a platform-dependent distribution — that
// two-runs-in-one-binary determinism checks are blind to. Re-pin only for
// a deliberate generator change, and say so in the commit.
TEST(GenerateSyntheticDatasetTest, GoldenChecksumPinsByteDeterminism) {
  TransitionGraph g = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 120;
  config.max_path_len = 4;
  config.record_error_rate = 0.15;
  config.record_missing_rate = 0.05;
  config.seed = 2024;
  auto a = GenerateSyntheticDataset(g, config);
  auto b = GenerateSyntheticDataset(g, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->records, b->records);
  EXPECT_EQ(Crc32(CanonicalRecordBytes(*a)), 0x5653A31Bu);
}

// ------------------------------------------------------------------ Dataset

TEST(DatasetTest, ObservedAndTrueViews) {
  Dataset ds;
  ds.graph = MakeRealLikeGraph();
  ds.records = {{"true1", "obs1", 0, 10}, {"true1", "true1", 1, 20}};
  auto observed = ds.ObservedRecords();
  auto truth = ds.TrueRecords();
  EXPECT_EQ(observed[0].id, "obs1");
  EXPECT_EQ(truth[0].id, "true1");
  EXPECT_EQ(ds.NumEntities(), 1u);
  EXPECT_DOUBLE_EQ(ds.RecordErrorRate(), 0.5);
}

// ---------------------------------------------------------------- real-like

TEST(RealLikeDatasetTest, MatchesPaperCalibration) {
  auto ds = MakeRealLikeDataset();
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->NumEntities(), 699u);
  // Paper: 2,045 records; the weighted path mix should land within a few
  // percent.
  EXPECT_NEAR(static_cast<double>(ds->records.size()), 2045.0, 110.0);
  EXPECT_NEAR(ds->RecordErrorRate(), 0.17, 0.03);
  EXPECT_EQ(ds->graph.num_locations(), 4u);
}

TEST(RealLikeDatasetTest, DeterministicBySeed) {
  auto a = MakeRealLikeDataset(5);
  auto b = MakeRealLikeDataset(5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->records, b->records);
}

TEST(ScaledRealLikeDatasetTest, ScalesRecordsWithTrajectories) {
  auto small = MakeScaledRealLikeDataset(2000);
  auto large = MakeScaledRealLikeDataset(6000);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  // Paper §6.4: 2,000 trajectories ≈ 5,189 records; 6,000 ≈ 15,795.
  EXPECT_NEAR(static_cast<double>(small->records.size()), 5189.0, 300.0);
  EXPECT_NEAR(static_cast<double>(large->records.size()), 15795.0, 900.0);
  EXPECT_EQ(small->NumEntities(), 2000u);
  EXPECT_EQ(large->NumEntities(), 6000u);
}

}  // namespace
}  // namespace idrepair
