#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/task_group.h"
#include "exec/thread_pool.h"
#include "gen/synthetic.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/phase.h"
#include "obs/scrape.h"
#include "obs/trace.h"
#include "repair/partitioned.h"
#include "repair/repairer.h"

namespace idrepair {
namespace {

/// Every test here leaves the process-wide switch the way it found it
/// (off), so the rest of the suite keeps its zero-overhead path.
class ObsTest : public ::testing::Test {
 protected:
  void TearDown() override { obs::SetEnabled(false); }
};

TEST_F(ObsTest, CounterMergesIncrementsFromPoolThreads) {
  obs::Counter counter;
  for (int threads : {1, 2, 8}) {
    counter.Reset();
    ThreadPool pool(threads);
    TaskGroup group(&pool);
    for (int i = 0; i < 64; ++i) {
      group.Spawn([&counter] {
        for (int k = 0; k < 100; ++k) counter.Increment();
        return Status::OK();
      });
    }
    ASSERT_TRUE(group.Wait().ok());
    EXPECT_EQ(counter.Value(), 6400u) << "threads=" << threads;
  }
}

TEST_F(ObsTest, HistogramBucketsBoundsInclusiveAndIntegerTickSum) {
  obs::Histogram h({1.0, 2.0});
  h.Observe(0.5);   // le="1"
  h.Observe(1.0);   // le="1" (bounds are inclusive)
  h.Observe(1.5);   // le="2"
  h.Observe(9.0);   // +Inf
  std::vector<uint64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(h.TotalCount(), 4u);
  // 0.5 + 1.0 + 1.5 + 9.0 stored in 1e-9 ticks: exact, no float
  // reassociation.
  EXPECT_DOUBLE_EQ(h.Sum(), 12.0);
  h.Reset();
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
}

TEST_F(ObsTest, ExponentialBucketsGrowGeometrically) {
  std::vector<double> b = obs::ExponentialBuckets(1.0, 2.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[3], 8.0);
  EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
  EXPECT_EQ(obs::DefaultLatencyBuckets().size(), 24u);
}

TEST_F(ObsTest, RegistrySnapshotsIdenticalAcrossThreadCounts) {
  // A deterministic workload recorded through 1, 2, and 8 pool threads
  // must render byte-identically: counter merges are integer sums and the
  // histogram sum is kept in integer ticks, so shard assignment (which
  // *does* change with the thread count) never shows in a snapshot.
  obs::MetricsRegistry registry;
  obs::Counter* items = registry.GetCounter(
      "test_items_total", obs::Stability::kStable, "items processed");
  obs::Histogram* weights = registry.GetHistogram(
      "test_weight", obs::Stability::kStable, {0.25, 0.5, 1.0}, "weights");
  std::string reference;
  for (int threads : {1, 2, 8}) {
    registry.Reset();
    ThreadPool pool(threads);
    TaskGroup group(&pool);
    for (int task = 0; task < 16; ++task) {
      group.Spawn([=] {
        for (int i = 0; i < 25; ++i) {
          items->Increment(2);
          weights->Observe(static_cast<double>((task * 25 + i) % 5) * 0.25);
        }
        return Status::OK();
      });
    }
    ASSERT_TRUE(group.Wait().ok());
    std::string rendered = registry.RenderPrometheus();
    if (threads == 1) {
      reference = rendered;
    } else {
      EXPECT_EQ(rendered, reference) << "threads=" << threads;
    }
  }
}

TEST_F(ObsTest, PrometheusRenderGolden) {
  obs::MetricsRegistry registry;
  registry.GetCounter("demo_ops_total", obs::Stability::kStable,
                      "operations")->Increment(3);
  registry.GetGauge("demo_depth", obs::Stability::kRuntime)->Set(-2);
  obs::Histogram* h = registry.GetHistogram(
      "demo_seconds", obs::Stability::kRuntime, {0.1, 1.0}, "latency");
  h->Observe(0.05);
  h->Observe(0.5);
  h->Observe(5.0);
  // Name-sorted, deterministic bound formatting ("0.1", "1", never
  // scientific notation), cumulative buckets, integer-tick-exact sum.
  EXPECT_EQ(registry.RenderPrometheus(),
            "# TYPE demo_depth gauge\n"
            "demo_depth -2\n"
            "# HELP demo_ops_total operations\n"
            "# TYPE demo_ops_total counter\n"
            "demo_ops_total 3\n"
            "# HELP demo_seconds latency\n"
            "# TYPE demo_seconds histogram\n"
            "demo_seconds_bucket{le=\"0.1\"} 1\n"
            "demo_seconds_bucket{le=\"1\"} 2\n"
            "demo_seconds_bucket{le=\"+Inf\"} 3\n"
            "demo_seconds_sum 5.55\n"
            "demo_seconds_count 3\n");
}

TEST_F(ObsTest, StableFilterExcludesRuntimeMetrics) {
  obs::MetricsRegistry registry;
  registry.GetCounter("stable_total", obs::Stability::kStable)->Increment();
  registry.GetCounter("runtime_total", obs::Stability::kRuntime)->Increment();
  auto all = registry.Collect(true);
  auto stable = registry.Collect(false);
  EXPECT_EQ(all.size(), 2u);
  ASSERT_EQ(stable.size(), 1u);
  EXPECT_EQ(stable[0].name, "stable_total");
  std::string rendered = registry.RenderPrometheus(false);
  EXPECT_NE(rendered.find("stable_total"), std::string::npos);
  EXPECT_EQ(rendered.find("runtime_total"), std::string::npos);
}

TEST_F(ObsTest, RegistryResetPreservesRegistrations) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("keep_total", obs::Stability::kStable);
  c->Increment(7);
  registry.Reset();
  // Same pointer, value zeroed: cached instrument pointers survive a reset.
  EXPECT_EQ(registry.GetCounter("keep_total", obs::Stability::kStable), c);
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(registry.NumMetrics(), 1u);
}

TEST_F(ObsTest, TraceSpansNestWithDepth) {
  obs::TraceSink sink(16);
  {
    obs::TraceSpan outer(&sink, "outer");
    { obs::TraceSpan inner(&sink, "inner", 7); }
  }
  std::vector<obs::TraceEvent> events = sink.Events();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start time: the outer span began first.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_FALSE(events[0].has_arg);
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_TRUE(events[1].has_arg);
  EXPECT_EQ(events[1].arg, 7u);
  EXPECT_GE(events[0].dur_us, events[1].dur_us);
}

TEST_F(ObsTest, RingBufferWrapsAndKeepsNewestEvents) {
  obs::TraceSink sink(8);
  for (uint64_t i = 0; i < 20; ++i) {
    obs::TraceSpan span(&sink, "span", i);
  }
  std::vector<obs::TraceEvent> events = sink.Events();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(sink.dropped_events(), 12u);
  // The survivors are exactly the 8 newest spans.
  std::vector<uint64_t> args;
  for (const auto& e : events) args.push_back(e.arg);
  std::sort(args.begin(), args.end());
  for (size_t i = 0; i < args.size(); ++i) EXPECT_EQ(args[i], 12 + i);
  sink.Clear();
  EXPECT_TRUE(sink.Events().empty());
  EXPECT_EQ(sink.dropped_events(), 0u);
}

TEST_F(ObsTest, WriteJsonEmitsChromeTraceEvents) {
  obs::TraceSink sink(16);
  { obs::TraceSpan span(&sink, "alpha", 3); }
  { obs::TraceSpan span(&sink, "beta"); }
  std::ostringstream out;
  sink.WriteJson(out);
  std::string json = out.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"beta\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"n\":3}"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST_F(ObsTest, DisabledSpansRecordNothingGlobally) {
  obs::SetEnabled(false);
  obs::TraceSink::Global().Clear();
  { obs::TraceSpan span("invisible"); }
  EXPECT_TRUE(obs::TraceSink::Global().Events().empty());
}

TEST_F(ObsTest, ObsOptionsValidate) {
  ObsOptions ok;
  EXPECT_TRUE(ok.Validate().ok());
  ObsOptions bad;
  bad.trace_capacity = 0;
  EXPECT_FALSE(bad.Validate().ok());
  EXPECT_FALSE(RepairOptions().WithTraceCapacity(0).Validated().ok());
}

TEST_F(ObsTest, PhaseScopeFeedsStatsHistogramAndTrace) {
  obs::SetEnabled(true);
  obs::TraceSink::Global().Clear();
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram(
      "phase_seconds", obs::Stability::kRuntime, {10.0}, "");
  double wall = 0.0;
  double cpu = 0.0;
  { obs::PhaseScope phase("test.phase", &wall, &cpu, h); }
  EXPECT_GE(wall, 0.0);
  EXPECT_EQ(h->TotalCount(), 1u);
  std::vector<obs::TraceEvent> events = obs::TraceSink::Global().Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test.phase");
  obs::SetEnabled(false);
  // Disabled: stats still accumulate, the obs sinks see nothing.
  double wall2 = 0.0;
  { obs::PhaseScope phase("test.phase", &wall2, nullptr, h); }
  EXPECT_GE(wall2, 0.0);
  EXPECT_EQ(h->TotalCount(), 1u);
}

/// Deterministic sparse dataset that splits into several chain components.
TrajectorySet SparseSet(const TransitionGraph& graph) {
  SyntheticConfig config;
  config.num_trajectories = 150;
  config.max_path_len = 4;
  config.window_seconds = 40000;
  config.seed = 5;
  auto ds = GenerateSyntheticDataset(graph, config);
  EXPECT_TRUE(ds.ok());
  return ds->BuildObservedTrajectories();
}

TEST_F(ObsTest, RepairWithObsEnabledPopulatesMetricsAndTrace) {
  TransitionGraph graph = MakeRealLikeGraph();
  TrajectorySet set = SparseSet(graph);
  obs::MetricsRegistry::Global().Reset();
  obs::TraceSink::Global().Clear();

  RepairOptions options;
  options.theta = 4;
  options.eta = 600;
  options.obs.enabled = true;
  IdRepairer repairer(graph, options);
  auto result = repairer.Repair(set);
  ASSERT_TRUE(result.ok());

  uint64_t runs = 0;
  uint64_t candidates = 0;
  for (const auto& m : obs::MetricsRegistry::Global().Collect()) {
    if (m.name == "idrepair_repair_runs_total") runs = m.counter_value;
    if (m.name == "idrepair_repair_candidates_total") {
      candidates = m.counter_value;
    }
  }
  EXPECT_EQ(runs, 1u);
  EXPECT_EQ(candidates, result->stats.num_candidates);

  std::vector<obs::TraceEvent> events = obs::TraceSink::Global().Events();
  ASSERT_FALSE(events.empty());
  bool saw_run = false;
  for (const auto& e : events) {
    if (std::string(e.name) == "repair.run") saw_run = true;
  }
  EXPECT_TRUE(saw_run);
}

TEST_F(ObsTest, StableMetricsByteIdenticalAcrossRepairThreadCounts) {
  // The acceptance invariant of the subsystem: a full partitioned repair
  // records the *same* stable metric values — rendered byte-for-byte — at
  // 1, 2, and 8 threads. Runtime metrics (latencies, steals) are excluded
  // by the stable filter; everything else must not depend on scheduling.
  TransitionGraph graph = MakeRealLikeGraph();
  TrajectorySet set = SparseSet(graph);
  std::string reference;
  for (int threads : {1, 2, 8}) {
    obs::MetricsRegistry::Global().Reset();
    obs::TraceSink::Global().Clear();
    RepairOptions options;
    options.theta = 4;
    options.eta = 600;
    options.exec.num_threads = threads;
    options.obs.enabled = true;
    PartitionedRepairer repairer(graph, options);
    auto result = repairer.Repair(set);
    ASSERT_TRUE(result.ok()) << "threads=" << threads;
    std::string rendered =
        obs::MetricsRegistry::Global().RenderPrometheus(false);
    EXPECT_NE(rendered.find("idrepair_repair_runs_total"), std::string::npos);
    if (threads == 1) {
      reference = rendered;
    } else {
      EXPECT_EQ(rendered, reference) << "threads=" << threads;
    }
  }
}

TEST_F(ObsTest, MetricsScraperAppendsSelfDelimitingBlocks) {
  namespace fs = std::filesystem;
  fs::path path = fs::temp_directory_path() / "idrepair_obs_scrape_test.prom";
  fs::remove(path);

  obs::SetEnabled(true);
  obs::MetricsRegistry::Global()
      .GetCounter("idrepair_scrape_test_total", obs::Stability::kRuntime,
                  "scrape test marker")
      ->Increment(3);
  {
    obs::MetricsScraper::Options options;
    options.path = path.string();
    options.interval_ms = 20;
    auto scraper = obs::MetricsScraper::Start(options);
    ASSERT_TRUE(scraper.ok()) << scraper.status();
    std::this_thread::sleep_for(std::chrono::milliseconds(70));
    (*scraper)->Stop();
    (*scraper)->Stop();  // idempotent
    EXPECT_TRUE((*scraper)->last_error().ok());
    // At least one timer tick plus the final scrape on Stop().
    EXPECT_GE((*scraper)->scrapes(), 2u);
  }

  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  // Sequence-numbered block headers, starting at 1, and every block carries
  // the full exposition (our marker counter included).
  EXPECT_NE(content.find("# idrepair scrape seq=1\n"), std::string::npos)
      << content.substr(0, 400);
  EXPECT_NE(content.find("# idrepair scrape seq=2\n"), std::string::npos);
  EXPECT_NE(content.find("idrepair_scrape_test_total 3"), std::string::npos);

  // A scraper over an unwritable path fails at Start, not on a timer tick.
  obs::MetricsScraper::Options bad;
  bad.path = "/nonexistent-dir/metrics.prom";
  EXPECT_FALSE(obs::MetricsScraper::Start(bad).ok());
  obs::MetricsScraper::Options empty;
  EXPECT_FALSE(obs::MetricsScraper::Start(empty).ok());

  fs::remove(path);
}

}  // namespace
}  // namespace idrepair
