// Independent re-derivations of the paper's formulas (Eq. 1, 3, 5) checked
// against the production implementation over randomized inputs — the
// implementations under test share no code with the oracles here.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "gen/synthetic.h"
#include "graph/generators.h"
#include "repair/candidates.h"
#include "repair/repairer.h"
#include "sim/edit_distance.h"

namespace idrepair {
namespace {

std::string RandomId(Rng& rng, size_t min_len = 3, size_t max_len = 9) {
  std::string s(static_cast<size_t>(rng.UniformInt(
                    static_cast<int64_t>(min_len),
                    static_cast<int64_t>(max_len))),
                'a');
  for (char& c : s) c = static_cast<char>('a' + rng.UniformIndex(4));
  return s;
}

// Eq. (1) oracle: 1 - dist / max(len).
TEST(FormulaFuzzTest, EquationOneMatchesDirectComputation) {
  NormalizedEditSimilarity sim;
  Rng rng(301);
  for (int i = 0; i < 300; ++i) {
    std::string a = RandomId(rng);
    std::string b = RandomId(rng);
    double expected =
        1.0 - static_cast<double>(EditDistance(a, b)) /
                  static_cast<double>(std::max(a.size(), b.size()));
    EXPECT_NEAR(sim.Similarity(a, b), expected, 1e-12);
  }
}

// Eq. (5) oracle: brute-force argmax of the length-weighted similarity sum.
TEST(FormulaFuzzTest, EquationFiveMatchesBruteForce) {
  NormalizedEditSimilarity sim;
  Rng rng(303);
  for (int trial = 0; trial < 100; ++trial) {
    // Random member trajectories with random lengths and IDs.
    std::vector<TrackingRecord> records;
    size_t members = 2 + rng.UniformIndex(3);
    Timestamp ts = 0;
    for (size_t m = 0; m < members; ++m) {
      std::string id = RandomId(rng);
      size_t len = 1 + rng.UniformIndex(3);
      for (size_t k = 0; k < len; ++k) {
        records.push_back(TrackingRecord{
            id, static_cast<LocationId>(rng.UniformIndex(4)), ts});
        ts += 1 + static_cast<Timestamp>(rng.UniformIndex(30));
      }
    }
    TrajectorySet set = TrajectorySet::FromRecords(records);
    std::vector<TrajIndex> all(set.size());
    for (TrajIndex i = 0; i < set.size(); ++i) all[i] = i;

    // Oracle: direct Eq. (5), first-maximum tie-break.
    TrajIndex best = 0;
    double best_score = -1.0;
    for (TrajIndex i : all) {
      double score = 0.0;
      for (TrajIndex j : all) {
        double ratio = static_cast<double>(set.at(i).size()) /
                       static_cast<double>(set.at(j).size());
        double dist = static_cast<double>(
            EditDistance(set.at(i).id(), set.at(j).id()));
        double max_len = static_cast<double>(
            std::max(set.at(i).id().size(), set.at(j).id().size()));
        score += ratio * (1.0 - dist / max_len);
      }
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    EXPECT_EQ(AssignTargetId(set, all, sim), best) << "trial " << trial;
  }
}

// Eq. (3) oracle: recompute rarity and ω from the candidate set by hand.
TEST(FormulaFuzzTest, EquationThreeMatchesDirectComputation) {
  TransitionGraph graph = MakeRealLikeGraph();
  for (uint64_t seed : {401u, 402u, 403u}) {
    SyntheticConfig config;
    config.num_trajectories = 80;
    config.max_path_len = 4;
    config.seed = seed;
    auto ds = GenerateSyntheticDataset(graph, config);
    ASSERT_TRUE(ds.ok());
    TrajectorySet set = ds->BuildObservedTrajectories();
    RepairOptions options;
    options.theta = 4;
    options.eta = 600;
    IdRepairer repairer(graph, options);
    auto result = repairer.Repair(set);
    ASSERT_TRUE(result.ok());

    // Oracle degree map.
    const CandidateSet& cands = result->candidates;
    std::vector<uint32_t> degree(set.size(), 0);
    for (size_t r = 0; r < cands.size(); ++r) {
      for (TrajIndex t : cands.invalid_members(r)) ++degree[t];
    }
    for (size_t r = 0; r < cands.size(); ++r) {
      uint32_t ra = UINT32_MAX;
      for (TrajIndex t : cands.invalid_members(r)) {
        ra = std::min(ra, degree[t]);
      }
      double expected =
          cands.similarity(r) +
          options.lambda *
              std::log(static_cast<double>(cands.num_invalid(r))) /
              std::log(static_cast<double>(ra + options.rarity_base_offset));
      EXPECT_EQ(cands.rarity(r), ra);
      EXPECT_NEAR(cands.effectiveness(r), expected, 1e-12);
    }
  }
}

// ω is monotone in |ivt| and sim: strictly more invalid members (same
// rarity) or higher similarity never lowers effectiveness.
TEST(FormulaFuzzTest, EffectivenessMonotonicity) {
  RepairOptions options;
  auto omega = [&](double sim, size_t ivt, uint32_t ra) {
    return sim + options.lambda * std::log(static_cast<double>(ivt)) /
                     std::log(static_cast<double>(ra + 1));
  };
  for (uint32_t ra = 1; ra <= 50; ++ra) {
    for (size_t ivt = 1; ivt + 1 <= 8; ++ivt) {
      EXPECT_LE(omega(0.5, ivt, ra), omega(0.5, ivt + 1, ra));
      EXPECT_LE(omega(0.5, ivt, ra), omega(0.6, ivt, ra));
      // Rarer repairs (smaller ra) score at least as high.
      EXPECT_GE(omega(0.5, ivt, ra), omega(0.5, ivt, ra + 1));
    }
  }
}

}  // namespace
}  // namespace idrepair
