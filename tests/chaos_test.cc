// Chaos/soak correctness harness (the fault-injection counterpart of
// differential_test.cc): seeded synthetic datasets run through all five
// engines across a fault × thread-count × graph-shape matrix. Invariants:
//
//  * armed-but-silent failpoints and delay-only chaos leave every engine's
//    output byte-identical to the never-armed run;
//  * an injected error surfaces as a clean non-OK Result (with the injected
//    code) and leaves no residue — the rerun after disarming is again
//    byte-identical;
//  * deadline expiry (forced via fault.deadline.expire) degrades to a
//    well-formed partial RepairResult that conserves records and carries
//    the DeadlineExceeded completion marker;
//  * the attempted-vs-completed obs counters account for every run.
//
// The soak sweep at the bottom reads IDREPAIR_CHAOS_SEED_BASE /
// IDREPAIR_CHAOS_ROUNDS so scripts/soak.sh can stretch it overnight under
// ASan/TSan without code changes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "eval/metrics.h"
#include "fault/deadline.h"
#include "fault/failpoint.h"
#include "gen/scenario_catalog.h"
#include "gen/synthetic.h"
#include "graph/generators.h"
#include "graph/serialization.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "server/client.h"
#include "server/server.h"
#include "test_util.h"

namespace idrepair {
namespace {

using testutil::AllEngineNames;
using testutil::MakeEngineByName;

// Sites injected on each engine's Repair() path, used to drive the
// error/alloc/cancel matrix. The baselines are deliberately absent: they
// carry obs counters but no failpoints, and the byte-identity tests verify
// chaos armed elsewhere never perturbs them.
const std::map<std::string, std::vector<std::string>>& ErrorSitesByEngine() {
  static const std::map<std::string, std::vector<std::string>> kSites = {
      {"core", {"repair.generation.shard", "repair.selection.shard",
                "repair.selection.commit"}},
      {"partitioned",
       {"repair.partition.repair", "repair.partition.merge",
        "repair.generation.shard", "repair.selection.shard",
        "repair.selection.commit"}},
      {"streaming", {"stream.append"}},
  };
  return kSites;
}

// Every failpoint the production code evaluates (src/fault/README.md).
const std::vector<std::string>& AllSites() {
  static const std::vector<std::string> kSites = {
      "exec.pool.dispatch",      "exec.pool.steal",
      "exec.task_group.run",     "repair.generation.shard",
      "repair.selection.shard",  "repair.selection.commit",
      "repair.partition.repair", "repair.partition.merge",
      "stream.append",           "stream.poll",
      "stream.finish",           "io.csv.read",
      "io.csv.write",            "io.graph.load",
      "io.graph.save",           "io.snapshot.save",
      "io.snapshot.load",        "bench.report.write",
      "eval.metrics.fragment_truth",
      "eval.metrics.evaluate",
      "eval.diagnostics.diagnose",
      fault::kDeadlineExpireSite,
  };
  return kSites;
}

struct Scenario {
  std::string name;
  TransitionGraph graph;
  TrajectorySet set;
  RepairOptions options;
};

// Two graph shapes × one error rate keeps the full matrix (scenario ×
// engine × threads × fault) inside a tier-1 time budget; the soak sweep
// rotates seeds on top.
std::vector<Scenario> MakeScenarios(uint64_t seed_base = 9000) {
  struct Shape {
    const char* name;
    TransitionGraph graph;
    size_t theta;
    int64_t travel_lo, travel_hi;
  };
  std::vector<Shape> shapes;
  shapes.push_back({"paper", MakePaperExampleGraph(), 5, 60, 180});
  shapes.push_back({"grid", MakeGridNetwork(3, 4), 6, 30, 90});

  std::vector<Scenario> scenarios;
  uint64_t seed = seed_base;
  for (auto& shape : shapes) {
    SyntheticConfig config;
    config.num_trajectories = 100;
    config.record_error_rate = 0.2;
    config.max_path_len = shape.theta;
    config.window_seconds = 3600;
    config.travel_median_lo = shape.travel_lo;
    config.travel_median_hi = shape.travel_hi;
    config.seed = ++seed;
    auto ds = GenerateSyntheticDataset(shape.graph, config);
    if (!ds.ok()) {
      ADD_FAILURE() << shape.name << ": " << ds.status();
      continue;
    }
    Scenario s;
    s.name = shape.name;
    s.graph = shape.graph;
    s.set = ds->BuildObservedTrajectories();
    s.options.theta = shape.theta;
    s.options.eta = 600;
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

// The soak arms additionally carry the adversarial near-miss workload from
// the scenario catalog (light variant): corrupted IDs that collide with
// other live entities produce contested candidates, which stresses
// eviction and selection under chaos in ways the uniform OCR scenarios
// cannot. Kept out of the per-fault matrix tests to hold their budget.
std::vector<Scenario> MakeSoakScenarios() {
  std::vector<Scenario> scenarios = MakeScenarios();
  auto entry = FindScenario("grid_near_miss", /*light=*/true);
  if (!entry.ok()) {
    ADD_FAILURE() << entry.status();
    return scenarios;
  }
  auto ds = BuildScenarioDataset(*entry);
  if (!ds.ok()) {
    ADD_FAILURE() << ds.status();
    return scenarios;
  }
  Scenario s;
  s.name = "catalog_near_miss";
  s.graph = ds->graph;
  s.set = ds->BuildObservedTrajectories();
  s.options.theta = entry->theta;
  s.options.eta = entry->eta;
  scenarios.push_back(std::move(s));
  return scenarios;
}

const std::vector<int>& ThreadCounts() {
  static const std::vector<int> kThreads = {1, 2, 8};
  return kThreads;
}

// Full byte-level digest of a RepairResult: the repaired set point by
// point, the (sorted) rewrite map, the selection, and Ω to full precision.
// Two runs with equal fingerprints produced indistinguishable output.
std::string Fingerprint(const RepairResult& result) {
  std::ostringstream out;
  out.precision(17);
  for (TrajIndex i = 0; i < result.repaired.size(); ++i) {
    const Trajectory& t = result.repaired.at(i);
    out << t.id() << ":";
    for (const auto& p : t.points()) out << p.loc << "@" << p.ts << ",";
    out << ";";
  }
  std::map<TrajIndex, std::string> rewrites(result.rewrites.begin(),
                                            result.rewrites.end());
  out << "|rw:";
  for (const auto& [idx, id] : rewrites) out << idx << "->" << id << ",";
  out << "|sel:";
  for (RepairIndex r : result.selected) out << r << ",";
  out << "|omega:" << result.total_effectiveness;
  out << "|cands:" << result.candidates.size();
  return std::move(out).str();
}

Result<RepairResult> RunEngine(std::string_view engine, const Scenario& s,
                               int threads, int64_t deadline_ms = 0) {
  RepairOptions options = s.options;
  options.exec.num_threads = threads;
  options.deadline_ms = deadline_ms;
  auto repairer = MakeEngineByName(engine, s.graph, options);
  if (repairer == nullptr) {
    return Status::InvalidArgument("unknown engine " + std::string(engine));
  }
  return repairer->Repair(s.set);
}

// Never-armed reference fingerprints, computed once per binary run.
const std::map<std::string, std::string>& BaselineFingerprints() {
  static const std::map<std::string, std::string>* kBaselines = [] {
    auto* baselines = new std::map<std::string, std::string>();
    for (const Scenario& s : MakeSoakScenarios()) {
      for (std::string_view engine : AllEngineNames()) {
        for (int threads : ThreadCounts()) {
          auto result = RunEngine(engine, s, threads);
          std::string key =
              s.name + "/" + std::string(engine) + "/" + std::to_string(threads);
          (*baselines)[key] =
              result.ok() ? Fingerprint(*result) : "error:" + key;
        }
      }
    }
    return baselines;
  }();
  return *kBaselines;
}

std::string BaselineFor(const Scenario& s, std::string_view engine,
                        int threads) {
  return BaselineFingerprints().at(s.name + "/" + std::string(engine) + "/" +
                                   std::to_string(threads));
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FailPointRegistry::Global().DisarmAll(); }
  void TearDown() override {
    fault::FailPointRegistry::Global().DisarmAll();
    ASSERT_FALSE(fault::Armed()) << "chaos leaked out of a test";
  }
};

// Arming every site with a trigger that never fires must not change a
// single byte of any engine's output at any thread count — the subsystem's
// "observation does not disturb" contract.
TEST_F(ChaosTest, ArmedButSilentSitesAreByteInvisible) {
  fault::FaultSpec silent;
  silent.fire_on_hit = 1000000000;  // far beyond any hit count here
  for (const std::string& site : AllSites()) {
    ASSERT_TRUE(fault::FailPointRegistry::Global().Arm(site, silent).ok());
  }
  ASSERT_TRUE(fault::Armed());

  for (const Scenario& s : MakeScenarios()) {
    for (std::string_view engine : AllEngineNames()) {
      for (int threads : ThreadCounts()) {
        SCOPED_TRACE(s.name + "/" + std::string(engine) + "/t" +
                     std::to_string(threads));
        auto result = RunEngine(engine, s, threads);
        ASSERT_TRUE(result.ok()) << result.status();
        EXPECT_TRUE(result->completion.ok());
        EXPECT_EQ(Fingerprint(*result), BaselineFor(s, engine, threads));
      }
    }
  }
}

// Delay fires perturb scheduling but never results: seeded delays on the
// pool and shard sites leave output byte-identical while genuinely firing.
TEST_F(ChaosTest, DelayChaosNeverChangesResults) {
  for (const char* site :
       {"exec.pool.dispatch", "exec.pool.steal", "exec.task_group.run",
        "repair.generation.shard"}) {
    fault::FaultSpec delay;
    delay.action = fault::FaultAction::kDelay;
    delay.one_in = 3;
    delay.seed = 11;
    delay.delay_micros = 200;
    ASSERT_TRUE(fault::FailPointRegistry::Global().Arm(site, delay).ok());
  }

  for (const Scenario& s : MakeScenarios()) {
    for (std::string_view engine : {"core", "partitioned", "streaming"}) {
      for (int threads : ThreadCounts()) {
        SCOPED_TRACE(s.name + "/" + std::string(engine) + "/t" +
                     std::to_string(threads));
        auto result = RunEngine(engine, s, threads);
        ASSERT_TRUE(result.ok()) << result.status();
        EXPECT_EQ(Fingerprint(*result), BaselineFor(s, engine, threads));
      }
    }
  }
  EXPECT_GT(fault::FailPointRegistry::Global().TotalFires(), 0u)
      << "the delay chaos never actually fired";
}

// An injected error must surface as a clean non-OK Result carrying the
// injected code, and must leave no residue: after DisarmAll the rerun is
// byte-identical to the never-armed baseline.
TEST_F(ChaosTest, ErrorInjectionPropagatesCleanlyAndLeavesNoResidue) {
  for (const Scenario& s : MakeScenarios()) {
    for (const auto& [engine, sites] : ErrorSitesByEngine()) {
      for (const std::string& site : sites) {
        for (int threads : ThreadCounts()) {
          SCOPED_TRACE(s.name + "/" + engine + "/" + site + "/t" +
                       std::to_string(threads));
          fault::FaultSpec spec;
          spec.fire_on_hit = 1;
          spec.code = StatusCode::kIoError;
          spec.message = "injected by chaos_test";
          ASSERT_TRUE(
              fault::FailPointRegistry::Global().Arm(site, spec).ok());

          auto result = RunEngine(engine, s, threads);
          ASSERT_FALSE(result.ok())
              << "armed " << site << " but the run succeeded";
          EXPECT_EQ(result.status().code(), StatusCode::kIoError);
          EXPECT_NE(result.status().message().find("injected by chaos_test"),
                    std::string::npos)
              << result.status();
          EXPECT_GE(
              fault::FailPointRegistry::Global().GetPoint(site)->fires(), 1u);

          fault::FailPointRegistry::Global().DisarmAll();
          auto rerun = RunEngine(engine, s, threads);
          ASSERT_TRUE(rerun.ok()) << rerun.status();
          EXPECT_EQ(Fingerprint(*rerun), BaselineFor(s, engine, threads));
        }
      }
    }
  }
}

// Selection-phase faults at real parallel grain: --selection-grain 1 at
// eight threads makes the effectiveness-sort shards, graph shards, and
// invalidation fan-out genuinely parallel, and an error injected at either
// selection site must still surface as one clean non-OK Result (first
// error wins, no torn state). The rerun after disarming keeps the
// never-armed, default-grain fingerprint — grain is a scheduling knob,
// never an output knob.
TEST_F(ChaosTest, SelectionFaultsPropagateCleanlyAtParallelGrain) {
  const Scenario base = MakeScenarios().front();
  Scenario fine = base;
  fine.options.exec.min_selection_grain = 1;
  for (const char* site :
       {"repair.selection.shard", "repair.selection.commit"}) {
    for (std::string_view engine : {"core", "partitioned"}) {
      SCOPED_TRACE(std::string(site) + "/" + std::string(engine));
      fault::FaultSpec spec;
      spec.fire_on_hit = 1;
      spec.code = StatusCode::kInternal;
      spec.message = "injected selection fault";
      ASSERT_TRUE(fault::FailPointRegistry::Global().Arm(site, spec).ok());

      auto result = RunEngine(engine, fine, 8);
      ASSERT_FALSE(result.ok()) << "armed " << site << " but the run passed";
      EXPECT_EQ(result.status().code(), StatusCode::kInternal);
      EXPECT_NE(result.status().message().find("injected selection fault"),
                std::string::npos)
          << result.status();

      fault::FailPointRegistry::Global().DisarmAll();
      auto rerun = RunEngine(engine, fine, 8);
      ASSERT_TRUE(rerun.ok()) << rerun.status();
      EXPECT_EQ(Fingerprint(*rerun), BaselineFor(base, engine, 8));
    }
  }
}

// Deadline expiry forced mid-selection (the fourth fault.deadline.expire
// evaluation is the second commit check: generation boundary, selection
// boundary, then one check per commit) cuts the commit loop after exactly
// one commit. The result is a well-formed partial: OK status, completion
// naming the selection-commit boundary, records conserved, and a selection
// that is a non-empty strict prefix of the clean run's.
TEST_F(ChaosTest, DeadlineExpiryMidSelectionKeepsCompatiblePrefix) {
  const Scenario s = MakeScenarios().front();
  auto clean = RunEngine("core", s, 1);
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_GT(clean->selected.size(), 1u)
      << "scenario too small to interrupt mid-selection";

  fault::FaultSpec expire;
  expire.fire_on_hit = 4;
  ASSERT_TRUE(fault::FailPointRegistry::Global()
                  .Arm(fault::kDeadlineExpireSite, expire)
                  .ok());
  auto partial = RunEngine("core", s, 1, /*deadline_ms=*/600000);
  ASSERT_TRUE(partial.ok()) << partial.status();
  EXPECT_EQ(partial->completion.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(partial->completion.message().find("selection commit"),
            std::string::npos)
      << partial->completion;
  EXPECT_EQ(partial->repaired.total_records(), s.set.total_records());
  ASSERT_EQ(partial->selected.size(), 1u);
  // The surviving commit is the globally best candidate — the clean run
  // selected it too, so the partial is a compatible subset, not a detour.
  EXPECT_TRUE(std::find(clean->selected.begin(), clean->selected.end(),
                        partial->selected.front()) != clean->selected.end());
}

// The alloc-failure and cancellation actions map onto their dedicated
// status codes through a full engine run.
TEST_F(ChaosTest, AllocFailureAndCancellationCarryTheirCodes) {
  const Scenario s = MakeScenarios().front();
  const std::pair<fault::FaultAction, StatusCode> kActions[] = {
      {fault::FaultAction::kAllocFail, StatusCode::kResourceExhausted},
      {fault::FaultAction::kCancel, StatusCode::kCancelled},
  };
  for (const auto& [action, code] : kActions) {
    for (std::string_view engine : {"core", "partitioned"}) {
      SCOPED_TRACE(std::string(engine) + "/" +
                   StatusCodeToString(code));
      fault::FaultSpec spec;
      spec.action = action;
      spec.fire_on_hit = 1;
      ASSERT_TRUE(fault::FailPointRegistry::Global()
                      .Arm("repair.generation.shard", spec)
                      .ok());
      auto result = RunEngine(engine, s, 2);
      ASSERT_FALSE(result.ok());
      EXPECT_EQ(result.status().code(), code) << result.status();
      fault::FailPointRegistry::Global().DisarmAll();
    }
  }
}

// Forced deadline expiry (the fault.deadline.expire failpoint) degrades
// every deadline-aware engine to a well-formed partial result: OK status,
// DeadlineExceeded completion marker, full record conservation. Single
// thread keeps which-boundary-expired deterministic.
TEST_F(ChaosTest, ForcedDeadlineExpiryDegradesToWellFormedPartial) {
  for (const Scenario& s : MakeScenarios()) {
    for (std::string_view engine : {"core", "partitioned", "streaming"}) {
      SCOPED_TRACE(s.name + "/" + std::string(engine));
      fault::FaultSpec expire;
      expire.one_in = 1;  // every deadline check reports expiry
      ASSERT_TRUE(fault::FailPointRegistry::Global()
                      .Arm(fault::kDeadlineExpireSite, expire)
                      .ok());

      auto result = RunEngine(engine, s, 1, /*deadline_ms=*/600000);
      ASSERT_TRUE(result.ok()) << result.status();
      EXPECT_EQ(result->completion.code(), StatusCode::kDeadlineExceeded)
          << result->completion;
      EXPECT_EQ(result->repaired.total_records(), s.set.total_records());

      // Same options, failpoint disarmed: the (far-future) deadline never
      // actually expires, so output is byte-identical to no deadline at
      // all — deadline_ms alone must not perturb results.
      fault::FailPointRegistry::Global().DisarmAll();
      auto clean = RunEngine(engine, s, 1, /*deadline_ms=*/600000);
      ASSERT_TRUE(clean.ok()) << clean.status();
      EXPECT_TRUE(clean->completion.ok()) << clean->completion;
      EXPECT_EQ(Fingerprint(*clean), BaselineFor(s, engine, 1));
    }
  }
}

// Partition-granularity degradation: expiring after the first partition
// check yields a prefix-of-partitions partial whose completion message
// counts the passed-through partitions.
TEST_F(ChaosTest, PartitionedDeadlineSkipsAtPartitionGranularity) {
  const Scenario s = MakeScenarios().front();
  fault::FaultSpec expire;
  expire.fire_on_hit = 1;  // exactly one partition check reports expiry
  ASSERT_TRUE(fault::FailPointRegistry::Global()
                  .Arm(fault::kDeadlineExpireSite, expire)
                  .ok());
  auto result = RunEngine("partitioned", s, 1, /*deadline_ms=*/600000);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completion.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(result->completion.message().find("partitions passed through"),
            std::string::npos)
      << result->completion;
  EXPECT_EQ(result->repaired.total_records(), s.set.total_records());
}

uint64_t CounterValue(const std::string& name) {
  for (const auto& m : obs::MetricsRegistry::Global().Collect()) {
    if (m.name == name) return m.counter_value;
  }
  return 0;
}

// Every engine accounts for its runs: attempts ticks at entry, runs only on
// full completion — so injected faults and degraded runs leave a visible
// attempted-but-not-completed gap.
TEST_F(ChaosTest, AttemptedVersusCompletedCountersAccountForEveryRun) {
  const std::map<std::string, std::pair<std::string, std::string>> kCounters =
      {
          {"core",
           {"idrepair_repair_attempts_total", "idrepair_repair_runs_total"}},
          {"partitioned",
           {"idrepair_partition_attempts_total",
            "idrepair_partition_runs_total"}},
          {"streaming",
           {"idrepair_stream_attempts_total", "idrepair_stream_runs_total"}},
          {"idsim",
           {"idrepair_baseline_idsim_attempts_total",
            "idrepair_baseline_idsim_runs_total"}},
          {"neighborhood",
           {"idrepair_baseline_neighborhood_attempts_total",
            "idrepair_baseline_neighborhood_runs_total"}},
      };
  obs::SetEnabled(true);
  const Scenario s = MakeScenarios().front();

  // Clean run: attempts and runs advance in lockstep on all five engines.
  for (const auto& [engine, counters] : kCounters) {
    SCOPED_TRACE(engine + "/clean");
    uint64_t attempts = CounterValue(counters.first);
    uint64_t runs = CounterValue(counters.second);
    ASSERT_TRUE(RunEngine(engine, s, 2).ok());
    EXPECT_EQ(CounterValue(counters.first), attempts + 1);
    EXPECT_EQ(CounterValue(counters.second), runs + 1);
  }

  // Faulted run: attempted, not completed.
  for (const auto& [engine, sites] : ErrorSitesByEngine()) {
    SCOPED_TRACE(engine + "/faulted");
    const auto& counters = kCounters.at(engine);
    fault::FaultSpec spec;
    spec.fire_on_hit = 1;
    ASSERT_TRUE(
        fault::FailPointRegistry::Global().Arm(sites.front(), spec).ok());
    uint64_t attempts = CounterValue(counters.first);
    uint64_t runs = CounterValue(counters.second);
    ASSERT_FALSE(RunEngine(engine, s, 2).ok());
    EXPECT_EQ(CounterValue(counters.first), attempts + 1);
    EXPECT_EQ(CounterValue(counters.second), runs);
    fault::FailPointRegistry::Global().DisarmAll();
  }

  // Degraded run: attempted, and not counted as a completed run either.
  {
    SCOPED_TRACE("core/degraded");
    fault::FaultSpec expire;
    expire.one_in = 1;
    ASSERT_TRUE(fault::FailPointRegistry::Global()
                    .Arm(fault::kDeadlineExpireSite, expire)
                    .ok());
    uint64_t attempts = CounterValue("idrepair_repair_attempts_total");
    uint64_t runs = CounterValue("idrepair_repair_runs_total");
    auto result = RunEngine("core", s, 1, /*deadline_ms=*/600000);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_FALSE(result->completion.ok());
    EXPECT_EQ(CounterValue("idrepair_repair_attempts_total"), attempts + 1);
    EXPECT_EQ(CounterValue("idrepair_repair_runs_total"), runs);
  }
}

// Faults on the incremental streaming surface (Poll returning nothing,
// Finish falling back to passthrough) must never lose or duplicate a
// record: the stream stays conservative under chaos.
TEST_F(ChaosTest, StreamingIncrementalFaultsConserveRecords) {
  const Scenario s = MakeScenarios().front();
  std::vector<TrackingRecord> records;
  for (TrajIndex i = 0; i < s.set.size(); ++i) {
    for (const auto& p : s.set.at(i).points()) {
      records.push_back(TrackingRecord{s.set.at(i).id(), p.loc, p.ts});
    }
  }
  std::stable_sort(records.begin(), records.end(),
                   [](const TrackingRecord& a, const TrackingRecord& b) {
                     return std::tie(a.ts, a.id, a.loc) <
                            std::tie(b.ts, b.id, b.loc);
                   });

  fault::FaultSpec flaky;
  flaky.one_in = 2;
  flaky.seed = 17;
  ASSERT_TRUE(
      fault::FailPointRegistry::Global().Arm("stream.poll", flaky).ok());
  fault::FaultSpec fail_finish;
  fail_finish.fire_on_hit = 1;
  ASSERT_TRUE(fault::FailPointRegistry::Global()
                  .Arm("stream.finish", fail_finish)
                  .ok());

  StreamingRepairer stream(s.graph, s.options);
  size_t emitted_records = 0;
  Timestamp last_poll = records.empty() ? 0 : records.front().ts;
  for (const auto& r : records) {
    ASSERT_TRUE(stream.Append(r).ok());
    if (stream.watermark() - last_poll > s.options.eta) {
      for (const Trajectory& t : stream.Poll()) emitted_records += t.size();
      last_poll = stream.watermark();
    }
  }
  for (const Trajectory& t : stream.Finish()) emitted_records += t.size();

  EXPECT_EQ(emitted_records, records.size());
  EXPECT_EQ(stream.pending_records(), 0u);
}

// Eviction-heavy soak arm: the incremental streaming engine under maximum
// eviction pressure — tightest flush horizon, a small bounded buffer, a
// poll after every append — with the poll failpoint flickering. Forced
// flushes, deferrals, component splits, and backpressure drains all fire
// constantly; every accepted record must still come out exactly once, and
// rounds must not contaminate each other (each reuses the engine object
// after a Finish() drain on a shifted timeline). Stretched by the same
// soak environment knobs as the seeded sweep.
TEST_F(ChaosTest, SoakEvictionHeavyStreaming) {
  uint64_t seed_base = 21;
  int rounds = 2;
  if (const char* env = std::getenv("IDREPAIR_CHAOS_SEED_BASE")) {
    seed_base = static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }
  if (const char* env = std::getenv("IDREPAIR_CHAOS_ROUNDS")) {
    rounds = static_cast<int>(std::strtol(env, nullptr, 10));
  }

  for (const Scenario& s : MakeSoakScenarios()) {
    std::vector<TrackingRecord> records;
    for (TrajIndex i = 0; i < s.set.size(); ++i) {
      for (const auto& p : s.set.at(i).points()) {
        records.push_back(TrackingRecord{s.set.at(i).id(), p.loc, p.ts});
      }
    }
    std::stable_sort(records.begin(), records.end(),
                     [](const TrackingRecord& a, const TrackingRecord& b) {
                       return std::tie(a.ts, a.id, a.loc) <
                              std::tie(b.ts, b.id, b.loc);
                     });
    ASSERT_FALSE(records.empty());
    const Timestamp span = records.back().ts - records.front().ts;

    StreamOptions stream_options;
    stream_options.flush_horizon_multiplier = 1.0;
    stream_options.max_buffered = 24;
    StreamingRepairer stream(s.graph, s.options, stream_options);

    Timestamp offset = 0;
    for (int round = 0; round < rounds; ++round) {
      SCOPED_TRACE(s.name + " round " + std::to_string(round));
      fault::FaultSpec flaky;
      flaky.one_in = 3;
      flaky.seed = seed_base + static_cast<uint64_t>(round);
      ASSERT_TRUE(
          fault::FailPointRegistry::Global().Arm("stream.poll", flaky).ok());

      size_t emitted_records = 0;
      for (const auto& r : records) {
        TrackingRecord shifted{r.id, r.loc, r.ts + offset};
        Status appended = stream.Append(shifted);
        if (!appended.ok()) {
          ASSERT_EQ(appended.code(), StatusCode::kResourceExhausted)
              << appended;
          for (const auto& t : stream.Poll()) emitted_records += t.size();
          if (stream.pending_records() >= stream_options.max_buffered) {
            for (const auto& t : stream.Finish()) {
              emitted_records += t.size();
            }
          }
          appended = stream.Append(shifted);
          ASSERT_TRUE(appended.ok()) << appended;
        }
        for (const auto& t : stream.Poll()) emitted_records += t.size();
      }
      for (const auto& t : stream.Finish()) emitted_records += t.size();
      fault::FailPointRegistry::Global().DisarmAll();

      EXPECT_EQ(emitted_records, records.size());
      EXPECT_EQ(stream.pending_records(), 0u);
      offset += span + 2 * s.options.eta + 1;  // next round: fresh timeline
    }
  }
}

// Seeded soak sweep: probabilistic error + delay chaos across the wired
// sites, all engines, all thread counts. Every run must either succeed and
// conserve records or fail with exactly the injected code — and once the
// chaos is disarmed the engines are back to byte-identical, proving no
// cross-run residue. scripts/soak.sh stretches the rounds/seeds via the
// environment.
TEST_F(ChaosTest, SoakSeededProbabilisticChaos) {
  uint64_t seed_base = 1;
  int rounds = 2;
  if (const char* env = std::getenv("IDREPAIR_CHAOS_SEED_BASE")) {
    seed_base = static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }
  if (const char* env = std::getenv("IDREPAIR_CHAOS_ROUNDS")) {
    rounds = static_cast<int>(std::strtol(env, nullptr, 10));
  }

  const auto scenarios = MakeSoakScenarios();
  for (int round = 0; round < rounds; ++round) {
    const uint64_t seed = seed_base + static_cast<uint64_t>(round);
    SCOPED_TRACE("seed " + std::to_string(seed));

    auto arm = [&](const char* site, fault::FaultAction action,
                   uint64_t one_in) {
      fault::FaultSpec spec;
      spec.action = action;
      spec.code = StatusCode::kInternal;
      spec.one_in = one_in;
      spec.seed = seed;
      spec.delay_micros = 100;
      ASSERT_TRUE(fault::FailPointRegistry::Global().Arm(site, spec).ok());
    };
    arm("exec.pool.dispatch", fault::FaultAction::kDelay, 5);
    arm("exec.pool.steal", fault::FaultAction::kDelay, 5);
    arm("repair.generation.shard", fault::FaultAction::kError, 4);
    arm("repair.selection.commit", fault::FaultAction::kError, 6);
    arm("repair.partition.repair", fault::FaultAction::kAllocFail, 4);
    arm("stream.append", fault::FaultAction::kCancel, 400);

    for (const Scenario& s : scenarios) {
      for (std::string_view engine : AllEngineNames()) {
        for (int threads : ThreadCounts()) {
          SCOPED_TRACE(s.name + "/" + std::string(engine) + "/t" +
                       std::to_string(threads));
          auto result = RunEngine(engine, s, threads);
          if (result.ok()) {
            EXPECT_TRUE(result->completion.ok());
            EXPECT_EQ(result->repaired.total_records(),
                      s.set.total_records());
          } else {
            const StatusCode code = result.status().code();
            EXPECT_TRUE(code == StatusCode::kInternal ||
                        code == StatusCode::kResourceExhausted ||
                        code == StatusCode::kCancelled)
                << result.status();
          }
        }
      }
    }

    fault::FailPointRegistry::Global().DisarmAll();
    for (const Scenario& s : scenarios) {
      for (std::string_view engine : AllEngineNames()) {
        SCOPED_TRACE(s.name + "/" + std::string(engine) + "/post-chaos");
        auto result = RunEngine(engine, s, 2);
        ASSERT_TRUE(result.ok()) << result.status();
        EXPECT_EQ(Fingerprint(*result), BaselineFor(s, engine, 2));
      }
    }
  }
}

// The eval layer's failpoints are delay-only (fault::MaybePerturb):
// chaos can stall ground-truth computation and metric evaluation, but the
// numbers that come out must be bit-identical to the undisturbed run.
TEST_F(ChaosTest, EvalDelayChaosFiresWithoutChangingMetrics) {
  SyntheticConfig config;
  config.num_trajectories = 60;
  config.record_error_rate = 0.3;
  config.seed = 555;
  auto dataset = GenerateSyntheticDataset(MakePaperExampleGraph(), config);
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  TrajectorySet observed = dataset->BuildObservedTrajectories();

  RepairOptions options;
  options.theta = 5;
  options.eta = 600;
  IdRepairer engine(dataset->graph, options);
  auto result = engine.Repair(observed);
  ASSERT_TRUE(result.ok()) << result.status();

  auto truth_clean = ComputeFragmentTruth(*dataset, observed);
  QualityMetrics clean =
      EvaluateRewrites(truth_clean, observed, result->rewrites);

  fault::FaultSpec delay;
  delay.action = fault::FaultAction::kDelay;
  delay.one_in = 1;
  delay.delay_micros = 100;
  for (const char* site :
       {"eval.metrics.fragment_truth", "eval.metrics.evaluate"}) {
    ASSERT_TRUE(fault::FailPointRegistry::Global().Arm(site, delay).ok());
  }

  auto truth_chaos = ComputeFragmentTruth(*dataset, observed);
  QualityMetrics chaos =
      EvaluateRewrites(truth_chaos, observed, result->rewrites);
  EXPECT_GE(fault::FailPointRegistry::Global()
                .GetPoint("eval.metrics.fragment_truth")
                ->fires(),
            1u);
  EXPECT_GE(fault::FailPointRegistry::Global()
                .GetPoint("eval.metrics.evaluate")
                ->fires(),
            1u);
  EXPECT_EQ(truth_chaos, truth_clean);
  EXPECT_EQ(chaos.precision, clean.precision);
  EXPECT_EQ(chaos.recall, clean.recall);
  EXPECT_EQ(chaos.f_measure, clean.f_measure);
  EXPECT_EQ(chaos.num_correct, clean.num_correct);
}

// The daemon kill-restart arm: a registered-and-snapshotted graph survives
// killing the daemon; the restarted daemon (--load-dir) repairs
// byte-identically to the pre-kill daemon. Chaos rides along twice: an
// io.snapshot.save error makes the Snapshot request fail with the injected
// status (and no partial registry damage), and after disarming the same
// request succeeds — the daemon is fault-transparent, not fault-sticky.
TEST_F(ChaosTest, DaemonKillRestartFromSnapshotIsByteIdentical) {
  namespace fs = std::filesystem;
  const Scenario s = MakeScenarios().front();
  fs::path dir = fs::temp_directory_path() / "idrepair_chaos_daemon";
  fs::remove_all(dir);
  fs::create_directories(dir);

  std::vector<TrackingRecord> records;
  for (TrajIndex i = 0; i < s.set.size(); ++i) {
    for (const auto& p : s.set.at(i).points()) {
      records.push_back(TrackingRecord{s.set.at(i).id(), p.loc, p.ts});
    }
  }

  std::vector<TrackingRecord> before_kill;
  {
    server::ServerOptions server_options;
    server_options.listen = "tcp:127.0.0.1:0";
    auto srv = server::IdRepairServer::Start(std::move(server_options));
    ASSERT_TRUE(srv.ok()) << srv.status();
    auto client = server::RepairClient::Connect((*srv)->address());
    ASSERT_TRUE(client.ok()) << client.status();

    server::RegisterGraphRequest reg;
    reg.name = "chaos";
    std::ostringstream graph_text;
    ASSERT_TRUE(WriteTransitionGraph(graph_text, s.graph).ok());
    reg.graph_text = graph_text.str();
    reg.options = s.options;
    reg.corpus = records;
    ASSERT_TRUE(client->RegisterGraph(reg).ok());

    server::RepairRequest req;
    req.name = "chaos";
    req.use_corpus = true;
    auto reply = client->Repair(req);
    ASSERT_TRUE(reply.ok()) << reply.status();
    ASSERT_EQ(reply->batches.size(), 1u);
    ASSERT_TRUE(reply->batches[0].completion.ok());
    before_kill = reply->batches[0].repaired;

    // Snapshot under an injected save fault: clean failure, nothing saved.
    fault::FaultSpec spec;
    spec.fire_on_hit = 1;
    spec.code = StatusCode::kIoError;
    spec.message = "injected snapshot-save fault";
    ASSERT_TRUE(fault::FailPointRegistry::Global()
                    .Arm("io.snapshot.save", spec)
                    .ok());
    server::SnapshotRequest snap;
    snap.dir = dir.string();
    auto failed = client->Snapshot(snap);
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.status().code(), StatusCode::kIoError);
    EXPECT_NE(failed.status().message().find("injected snapshot-save fault"),
              std::string::npos)
        << failed.status();

    // Disarmed: the identical request succeeds.
    fault::FailPointRegistry::Global().DisarmAll();
    auto saved = client->Snapshot(snap);
    ASSERT_TRUE(saved.ok()) << saved.status();
    EXPECT_EQ(saved->num_saved, 1u);

    (*srv)->Stop();  // kill: no shutdown persistence
  }

  {
    server::ServerOptions server_options;
    server_options.listen = "tcp:127.0.0.1:0";
    server_options.load_dir = dir.string();
    auto srv = server::IdRepairServer::Start(std::move(server_options));
    ASSERT_TRUE(srv.ok()) << srv.status();
    EXPECT_EQ((*srv)->registry().size(), 1u);

    auto client = server::RepairClient::Connect((*srv)->address());
    ASSERT_TRUE(client.ok()) << client.status();
    server::RepairRequest req;
    req.name = "chaos";
    req.use_corpus = true;
    auto reply = client->Repair(req);
    ASSERT_TRUE(reply.ok()) << reply.status();
    ASSERT_EQ(reply->batches.size(), 1u);
    EXPECT_EQ(reply->batches[0].repaired, before_kill);
    (*srv)->Stop();
  }

  // An injected load fault keeps a fresh daemon from starting on the same
  // snapshot dir — fail-stop, not a silently empty registry.
  {
    fault::FaultSpec spec;
    spec.fire_on_hit = 1;
    spec.code = StatusCode::kIoError;
    spec.message = "injected snapshot-load fault";
    ASSERT_TRUE(fault::FailPointRegistry::Global()
                    .Arm("io.snapshot.load", spec)
                    .ok());
    server::ServerOptions server_options;
    server_options.listen = "tcp:127.0.0.1:0";
    server_options.load_dir = dir.string();
    auto srv = server::IdRepairServer::Start(std::move(server_options));
    ASSERT_FALSE(srv.ok());
    EXPECT_EQ(srv.status().code(), StatusCode::kIoError);
    fault::FailPointRegistry::Global().DisarmAll();
  }

  std::error_code ec;
  fs::remove_all(dir, ec);
}

}  // namespace
}  // namespace idrepair
