#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "graph/generators.h"
#include "repair/candidates.h"
#include "test_util.h"

namespace idrepair {
namespace {

using testutil::MakeTable2Trajectories;
using testutil::RunningExampleOptions;

class CandidatesFixture : public ::testing::Test {
 protected:
  CandidatesFixture()
      : graph_(MakePaperExampleGraph()),
        set_(MakeTable2Trajectories()),
        options_(RunningExampleOptions()),
        pred_(graph_, options_.theta, options_.eta) {}

  std::vector<CandidateRepair> Generate() {
    TrajectoryGraph gm(set_, pred_, options_);
    std::vector<bool> is_valid(set_.size());
    for (TrajIndex i = 0; i < set_.size(); ++i) {
      is_valid[i] = set_.at(i).IsValid(graph_);
    }
    auto candidates = GenerateCandidates(set_, gm, pred_, options_,
                                         similarity_, is_valid, &stats_);
    ComputeEffectiveness(candidates, options_, set_.size());
    // Deterministic order for assertions.
    std::sort(candidates.begin(), candidates.end(),
              [](const CandidateRepair& a, const CandidateRepair& b) {
                return a.members < b.members;
              });
    return candidates;
  }

  TransitionGraph graph_;
  TrajectorySet set_;
  RepairOptions options_;
  PredicateEvaluator pred_;
  NormalizedEditSimilarity similarity_;
  GenerationStats stats_;
};

// ----------------------------------------------------------- target IDs

TEST_F(CandidatesFixture, AssignTargetIdMatchesExample34) {
  // {T1, T2} -> GL21348 (trajectory 0); {T2, T3} -> GL83248 (trajectory 2).
  EXPECT_EQ(AssignTargetId(set_, {0, 1}, similarity_), 0u);
  EXPECT_EQ(AssignTargetId(set_, {1, 2}, similarity_), 2u);
  EXPECT_EQ(AssignTargetId(set_, {0}, similarity_), 0u);
}

TEST_F(CandidatesFixture, AssignTargetIdPrefersLongerTrajectories) {
  // A long trajectory with a dissimilar ID still wins Eq. (5) through the
  // |Ti|/|Tj| weights.
  std::vector<TrackingRecord> records = {
      {"aaaaaaa", 0, 0}, {"aaaaaaa", 1, 100}, {"aaaaaaa", 3, 200},
      {"aaazzzz", 4, 300}};
  TrajectorySet set = TrajectorySet::FromRecords(records);
  TrajIndex target = AssignTargetId(set, {0, 1}, similarity_);
  EXPECT_EQ(set.at(target).id(), "aaaaaaa");
}

TEST_F(CandidatesFixture, AssignTargetIdTieBreaksToEarlierMember) {
  std::vector<TrackingRecord> records = {{"same1", 0, 0}, {"same2", 1, 100}};
  TrajectorySet set = TrajectorySet::FromRecords(records);
  // Perfect symmetry: equal lengths, equal mutual similarity.
  EXPECT_EQ(AssignTargetId(set, {0, 1}, similarity_), 0u);
}

// ----------------------------------------------------------- generation

TEST_F(CandidatesFixture, GeneratesExactlyTheExample34Repairs) {
  auto candidates = Generate();
  // R1 = ({T1}, GL21348) has no invalid member and is dropped; R2 and R3
  // remain.
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].members, (std::vector<TrajIndex>{0, 1}));
  EXPECT_EQ(candidates[0].target_id, "GL21348");
  EXPECT_EQ(candidates[0].invalid_members, (std::vector<TrajIndex>{1}));
  EXPECT_EQ(candidates[1].members, (std::vector<TrajIndex>{1, 2}));
  EXPECT_EQ(candidates[1].target_id, "GL83248");
  EXPECT_EQ(candidates[1].invalid_members, (std::vector<TrajIndex>{1, 2}));
}

TEST_F(CandidatesFixture, SimilarityMatchesEquationOne) {
  auto candidates = Generate();
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_NEAR(candidates[0].similarity, 1.0 - 4.0 / 7.0, 1e-9);  // 0.428
  EXPECT_NEAR(candidates[1].similarity, 1.0 - 2.0 / 7.0, 1e-9);  // 0.714
}

TEST_F(CandidatesFixture, EffectivenessWithDefaultEquationThree) {
  auto candidates = Generate();
  ASSERT_EQ(candidates.size(), 2u);
  // R2: |ivt| = 1 so the potency term vanishes; ω = sim.
  EXPECT_NEAR(candidates[0].effectiveness, 0.4286, 1e-3);
  // R3: d(T2)=2, d(T3)=1, min-rarity=1, base=2: ω = 0.714 + 0.5·log2(2).
  EXPECT_EQ(candidates[1].rarity, 1u);
  EXPECT_NEAR(candidates[1].effectiveness, 0.714 + 0.5, 1e-3);
}

TEST_F(CandidatesFixture, PaperWorkedExampleValueNeedsBaseOffsetTwo) {
  // Figure 4(b) reports ω(R3) = 1.029, reproducible with log base ra+2
  // (see DESIGN.md §3).
  options_.rarity_base_offset = 2;
  auto candidates = Generate();
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_NEAR(candidates[0].effectiveness, 0.428, 1e-3);
  EXPECT_NEAR(candidates[1].effectiveness, 1.029, 1e-3);
}

TEST_F(CandidatesFixture, MaxRarityAggregationUsesLargestDegree) {
  options_.rarity_aggregation = RarityAggregation::kMax;
  auto candidates = Generate();
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[1].rarity, 2u);  // max(d(T2)=2, d(T3)=1)
  EXPECT_NEAR(candidates[1].effectiveness,
              0.714 + 0.5 * std::log(2.0) / std::log(3.0), 1e-3);
}

TEST_F(CandidatesFixture, GenerationStatsAreConsistent) {
  auto candidates = Generate();
  EXPECT_EQ(stats_.joinable_subsets, 3u);  // {T1}, {T1,T2}, {T2,T3}
  EXPECT_EQ(candidates.size(), 2u);        // minus the |ivt|=0 repair
  EXPECT_GE(stats_.jnb_checks, stats_.joinable_subsets);
}

TEST_F(CandidatesFixture, LambdaScalesThePotencyTerm) {
  options_.lambda = 1.0;
  auto candidates = Generate();
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_NEAR(candidates[1].effectiveness, 0.714 + 1.0, 1e-3);
}

TEST_F(CandidatesFixture, TargetIdIsAlwaysAMemberId) {
  auto candidates = Generate();
  for (const auto& c : candidates) {
    bool found = false;
    for (TrajIndex m : c.members) {
      found = found || set_.at(m).id() == c.target_id;
    }
    EXPECT_TRUE(found) << c.target_id;
  }
}

TEST_F(CandidatesFixture, RarityIsMinCoverDegreeOfInvalidMembers) {
  auto candidates = Generate();
  // Recompute degrees by hand.
  std::vector<uint32_t> degree(set_.size(), 0);
  for (const auto& c : candidates) {
    for (TrajIndex t : c.invalid_members) ++degree[t];
  }
  for (const auto& c : candidates) {
    uint32_t expected = UINT32_MAX;
    for (TrajIndex t : c.invalid_members) {
      expected = std::min(expected, degree[t]);
    }
    EXPECT_EQ(c.rarity, expected);
  }
}

}  // namespace
}  // namespace idrepair
