#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "gen/synthetic.h"
#include "graph/generators.h"
#include "repair/candidates.h"
#include "test_util.h"

namespace idrepair {
namespace {

using testutil::MakeTable2Trajectories;
using testutil::RunningExampleOptions;

class CandidatesFixture : public ::testing::Test {
 protected:
  CandidatesFixture()
      : graph_(MakePaperExampleGraph()),
        set_(MakeTable2Trajectories()),
        options_(RunningExampleOptions()),
        pred_(graph_, options_.theta, options_.eta) {}

  CandidateSet Generate() {
    TrajectoryGraph gm(set_, pred_, options_);
    std::vector<bool> is_valid(set_.size());
    for (TrajIndex i = 0; i < set_.size(); ++i) {
      is_valid[i] = set_.at(i).IsValid(graph_);
    }
    auto generated = GenerateCandidates(set_, gm, pred_, options_,
                                        similarity_, is_valid, &stats_);
    EXPECT_TRUE(generated.ok()) << generated.status();
    CandidateSet candidates = std::move(generated).value();
    EXPECT_TRUE(
        ComputeEffectiveness(candidates, options_, set_.size()).ok());
    // Deterministic order for assertions: re-emit rows sorted by member set.
    std::vector<size_t> order(candidates.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      auto ma = candidates.members(a);
      auto mb = candidates.members(b);
      return std::lexicographical_compare(ma.begin(), ma.end(), mb.begin(),
                                          mb.end());
    });
    CandidateSet sorted;
    for (size_t r : order) sorted.AppendFrom(candidates, r);
    return sorted;
  }

  TransitionGraph graph_;
  TrajectorySet set_;
  RepairOptions options_;
  PredicateEvaluator pred_;
  NormalizedEditSimilarity similarity_;
  GenerationStats stats_;
};

// ----------------------------------------------------------- target IDs

TEST_F(CandidatesFixture, AssignTargetIdMatchesExample34) {
  // {T1, T2} -> GL21348 (trajectory 0); {T2, T3} -> GL83248 (trajectory 2).
  EXPECT_EQ(AssignTargetId(set_, {0, 1}, similarity_), 0u);
  EXPECT_EQ(AssignTargetId(set_, {1, 2}, similarity_), 2u);
  EXPECT_EQ(AssignTargetId(set_, {0}, similarity_), 0u);
}

TEST_F(CandidatesFixture, AssignTargetIdPrefersLongerTrajectories) {
  // A long trajectory with a dissimilar ID still wins Eq. (5) through the
  // |Ti|/|Tj| weights.
  std::vector<TrackingRecord> records = {
      {"aaaaaaa", 0, 0}, {"aaaaaaa", 1, 100}, {"aaaaaaa", 3, 200},
      {"aaazzzz", 4, 300}};
  TrajectorySet set = TrajectorySet::FromRecords(records);
  TrajIndex target = AssignTargetId(set, {0, 1}, similarity_);
  EXPECT_EQ(set.at(target).id(), "aaaaaaa");
}

TEST_F(CandidatesFixture, AssignTargetIdTieBreaksToEarlierMember) {
  std::vector<TrackingRecord> records = {{"same1", 0, 0}, {"same2", 1, 100}};
  TrajectorySet set = TrajectorySet::FromRecords(records);
  // Perfect symmetry: equal lengths, equal mutual similarity.
  EXPECT_EQ(AssignTargetId(set, {0, 1}, similarity_), 0u);
}

// ----------------------------------------------------------- generation

TEST_F(CandidatesFixture, GeneratesExactlyTheExample34Repairs) {
  auto candidates = Generate();
  // R1 = ({T1}, GL21348) has no invalid member and is dropped; R2 and R3
  // remain.
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates.members(0), (std::vector<TrajIndex>{0, 1}));
  EXPECT_EQ(candidates.target_id(0), "GL21348");
  EXPECT_EQ(candidates.invalid_members(0), (std::vector<TrajIndex>{1}));
  EXPECT_EQ(candidates.members(1), (std::vector<TrajIndex>{1, 2}));
  EXPECT_EQ(candidates.target_id(1), "GL83248");
  EXPECT_EQ(candidates.invalid_members(1), (std::vector<TrajIndex>{1, 2}));
}

TEST_F(CandidatesFixture, SimilarityMatchesEquationOne) {
  auto candidates = Generate();
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_NEAR(candidates.similarity(0), 1.0 - 4.0 / 7.0, 1e-9);  // 0.428
  EXPECT_NEAR(candidates.similarity(1), 1.0 - 2.0 / 7.0, 1e-9);  // 0.714
}

TEST_F(CandidatesFixture, EffectivenessWithDefaultEquationThree) {
  auto candidates = Generate();
  ASSERT_EQ(candidates.size(), 2u);
  // R2: |ivt| = 1 so the potency term vanishes; ω = sim.
  EXPECT_NEAR(candidates.effectiveness(0), 0.4286, 1e-3);
  // R3: d(T2)=2, d(T3)=1, min-rarity=1, base=2: ω = 0.714 + 0.5·log2(2).
  EXPECT_EQ(candidates.rarity(1), 1u);
  EXPECT_NEAR(candidates.effectiveness(1), 0.714 + 0.5, 1e-3);
}

TEST_F(CandidatesFixture, PaperWorkedExampleValueNeedsBaseOffsetTwo) {
  // Figure 4(b) reports ω(R3) = 1.029, reproducible with log base ra+2
  // (see DESIGN.md §3).
  options_.rarity_base_offset = 2;
  auto candidates = Generate();
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_NEAR(candidates.effectiveness(0), 0.428, 1e-3);
  EXPECT_NEAR(candidates.effectiveness(1), 1.029, 1e-3);
}

TEST_F(CandidatesFixture, MaxRarityAggregationUsesLargestDegree) {
  options_.rarity_aggregation = RarityAggregation::kMax;
  auto candidates = Generate();
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates.rarity(1), 2u);  // max(d(T2)=2, d(T3)=1)
  EXPECT_NEAR(candidates.effectiveness(1),
              0.714 + 0.5 * std::log(2.0) / std::log(3.0), 1e-3);
}

TEST_F(CandidatesFixture, GenerationStatsAreConsistent) {
  auto candidates = Generate();
  EXPECT_EQ(stats_.joinable_subsets, 3u);  // {T1}, {T1,T2}, {T2,T3}
  EXPECT_EQ(candidates.size(), 2u);        // minus the |ivt|=0 repair
  EXPECT_GE(stats_.jnb_checks, stats_.joinable_subsets);
}

TEST_F(CandidatesFixture, GenerationStatsSumIdenticallyAcrossThreadCounts) {
  // Pins the phase-1 counters of the paper's running example and checks the
  // sharded generator's deterministic reduction reports the same numbers at
  // every thread count. The qualified cliques are {T1}, {T1,T2}, {T2} and
  // {T2,T3} (4 jnb checks — {T3} is pck-pruned: D is no entrance); the
  // singleton {T2} fails jnb (C alone is no valid path), leaving 3 joinable
  // subsets.
  GenerationStats reference;
  for (int threads : {1, 2, 8}) {
    options_.exec.num_threads = threads;
    options_.exec.min_candidate_grain = 1;  // every seed its own shard
    Generate();
    EXPECT_EQ(stats_.jnb_checks, 4u) << threads << " threads";
    EXPECT_EQ(stats_.joinable_subsets, 3u) << threads << " threads";
    if (threads == 1) {
      reference = stats_;
    } else {
      EXPECT_EQ(stats_.jnb_checks, reference.jnb_checks);
      EXPECT_EQ(stats_.joinable_subsets, reference.joinable_subsets);
      EXPECT_EQ(stats_.clique_stats.cliques_emitted,
                reference.clique_stats.cliques_emitted);
      EXPECT_EQ(stats_.clique_stats.nodes_visited,
                reference.clique_stats.nodes_visited);
      EXPECT_EQ(stats_.clique_stats.pck_pruned,
                reference.clique_stats.pck_pruned);
    }
  }
}

// ------------------------------------------------- parallel determinism

// A single 200+-trajectory chain component — the workload where component-
// level parallelism degenerates to one task and only intra-component
// sharding can help. GenerateCandidates must produce bit-identical
// candidate vectors and identical merged stats at 1, 2 and 8 threads.
TEST(ParallelGenerationTest, SingleGiantComponentIsBitIdenticalAcrossThreads) {
  TransitionGraph graph = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 210;
  config.window_seconds = 2400;  // dense: every start-time gap is far below η
  config.max_path_len = 4;
  config.seed = 4242;
  auto ds = GenerateSyntheticDataset(graph, config);
  ASSERT_TRUE(ds.ok()) << ds.status();
  TrajectorySet set = ds->BuildObservedTrajectories();
  ASSERT_GE(set.size(), 200u);

  RepairOptions options;
  options.theta = 4;
  options.eta = 600;
  // One chain component: consecutive start times all within η.
  for (TrajIndex i = 1; i < set.size(); ++i) {
    ASSERT_LE(set.at(i).start_time() - set.at(i - 1).start_time(),
              options.eta);
  }

  PredicateEvaluator pred(graph, options.theta, options.eta);
  NormalizedEditSimilarity similarity;
  std::vector<bool> is_valid(set.size());
  for (TrajIndex i = 0; i < set.size(); ++i) {
    is_valid[i] = set.at(i).IsValid(graph);
  }

  CandidateSet reference;
  GenerationStats reference_stats;
  for (int threads : {1, 2, 8}) {
    RepairOptions o = options;
    o.exec.num_threads = threads;
    o.exec.min_candidate_grain = 4;  // many shards even at 2 threads
    TrajectoryGraph gm(set, pred, o);
    GenerationStats stats;
    auto generated =
        GenerateCandidates(set, gm, pred, o, similarity, is_valid, &stats);
    ASSERT_TRUE(generated.ok()) << generated.status();
    CandidateSet candidates = std::move(generated).value();
    ASSERT_TRUE(ComputeEffectiveness(candidates, o, set.size()).ok());
    if (threads == 1) {
      ASSERT_GT(candidates.size(), 100u) << "workload too easy to be a test";
      reference = std::move(candidates);
      reference_stats = stats;
      continue;
    }
    SCOPED_TRACE(threads);
    ASSERT_EQ(candidates.size(), reference.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      EXPECT_EQ(candidates.members(i), reference.members(i))
          << "candidate " << i;
      EXPECT_EQ(candidates.target_id(i), reference.target_id(i))
          << "candidate " << i;
      EXPECT_EQ(candidates.invalid_members(i), reference.invalid_members(i))
          << "candidate " << i;
      // Bit-identical floats, not approximately equal: scoring happens
      // inside a shard in sequential order, so no summation is reordered.
      EXPECT_EQ(candidates.similarity(i), reference.similarity(i))
          << "candidate " << i;
      EXPECT_EQ(candidates.rarity(i), reference.rarity(i))
          << "candidate " << i;
      EXPECT_EQ(candidates.effectiveness(i), reference.effectiveness(i))
          << "candidate " << i;
    }
    EXPECT_EQ(stats.jnb_checks, reference_stats.jnb_checks);
    EXPECT_EQ(stats.joinable_subsets, reference_stats.joinable_subsets);
    EXPECT_EQ(stats.clique_stats.cliques_emitted,
              reference_stats.clique_stats.cliques_emitted);
    EXPECT_EQ(stats.clique_stats.nodes_visited,
              reference_stats.clique_stats.nodes_visited);
    EXPECT_EQ(stats.clique_stats.pck_pruned,
              reference_stats.clique_stats.pck_pruned);
  }
}

// Property/stress: randomized grains (including the auto sentinel and
// degenerate explicit draws) × threads {1, 2, 4, 8} must leave generation
// byte-identical to the 1-thread reference, with exact GenerationStats
// conservation — the dynamic scheduler may claim blocks in any order, but
// the block decomposition and the merge are pure functions of the grain.
TEST(ParallelGenerationTest, RandomizedGrainsAreBitIdenticalToSerial) {
  TransitionGraph graph = MakeRealLikeGraph();
  SyntheticConfig config;
  config.num_trajectories = 120;
  config.window_seconds = 1800;
  config.max_path_len = 4;
  config.seed = 20260811;
  auto ds = GenerateSyntheticDataset(graph, config);
  ASSERT_TRUE(ds.ok()) << ds.status();
  TrajectorySet set = ds->BuildObservedTrajectories();

  RepairOptions options;
  options.theta = 4;
  options.eta = 600;
  PredicateEvaluator pred(graph, options.theta, options.eta);
  NormalizedEditSimilarity similarity;
  std::vector<bool> is_valid(set.size());
  for (TrajIndex i = 0; i < set.size(); ++i) {
    is_valid[i] = set.at(i).IsValid(graph);
  }

  // 1-thread auto grain is the serial reference schedule by construction.
  CandidateSet reference;
  GenerationStats reference_stats;
  {
    RepairOptions o = options;
    o.exec.num_threads = 1;
    TrajectoryGraph gm(set, pred, o);
    auto generated = GenerateCandidates(set, gm, pred, o, similarity,
                                        is_valid, &reference_stats);
    ASSERT_TRUE(generated.ok()) << generated.status();
    reference = std::move(generated).value();
    ASSERT_TRUE(ComputeEffectiveness(reference, o, set.size()).ok());
    ASSERT_GT(reference.size(), 20u) << "workload too easy to be a test";
  }

  // Grain 0 is the auto sentinel; the explicit draws are fixed (not
  // time-seeded) so a failure reproduces.
  const size_t grains[] = {0, 1, 3, 17, 1000};
  for (size_t grain : grains) {
    for (int threads : {1, 2, 4, 8}) {
      RepairOptions o = options;
      o.exec.num_threads = threads;
      o.exec.min_candidate_grain = grain;
      TrajectoryGraph gm(set, pred, o);
      GenerationStats stats;
      auto generated =
          GenerateCandidates(set, gm, pred, o, similarity, is_valid, &stats);
      ASSERT_TRUE(generated.ok()) << generated.status();
      CandidateSet candidates = std::move(generated).value();
      ASSERT_TRUE(ComputeEffectiveness(candidates, o, set.size()).ok());
      SCOPED_TRACE("grain=" + std::to_string(grain) +
                   " threads=" + std::to_string(threads));
      ASSERT_EQ(candidates.size(), reference.size());
      for (size_t i = 0; i < candidates.size(); ++i) {
        ASSERT_EQ(candidates.members(i), reference.members(i));
        ASSERT_EQ(candidates.invalid_members(i),
                  reference.invalid_members(i));
        ASSERT_EQ(candidates.target_id(i), reference.target_id(i));
        ASSERT_EQ(candidates.similarity(i), reference.similarity(i));
        ASSERT_EQ(candidates.rarity(i), reference.rarity(i));
        ASSERT_EQ(candidates.effectiveness(i), reference.effectiveness(i));
      }
      // Exact conservation: every decomposition sees the same work.
      EXPECT_EQ(stats.jnb_checks, reference_stats.jnb_checks);
      EXPECT_EQ(stats.joinable_subsets, reference_stats.joinable_subsets);
      EXPECT_EQ(stats.clique_stats.cliques_emitted,
                reference_stats.clique_stats.cliques_emitted);
      EXPECT_EQ(stats.clique_stats.nodes_visited,
                reference_stats.clique_stats.nodes_visited);
      EXPECT_EQ(stats.clique_stats.pck_pruned,
                reference_stats.clique_stats.pck_pruned);
      // The scheduler footprint is reported and internally consistent.
      EXPECT_GE(stats.sched_blocks, 1u);
      EXPECT_GE(stats.sched_workers, 1u);
      EXPECT_LE(stats.sched_workers,
                static_cast<size_t>(std::max(threads, 1)));
      EXPECT_GE(stats.sched_imbalance, 1.0);
      if (threads == 1) {
        EXPECT_EQ(stats.sched_workers, 1u);
      }
    }
  }

  // Run-to-run determinism at a fixed decomposition: the similarity-memo
  // hit count is a pure function of (input, grain), so two identical runs
  // agree exactly even though the memo lives in pool-owned scratch.
  for (size_t grain : {size_t{0}, size_t{5}}) {
    GenerationStats first, second;
    for (GenerationStats* stats : {&first, &second}) {
      RepairOptions o = options;
      o.exec.num_threads = 8;
      o.exec.min_candidate_grain = grain;
      TrajectoryGraph gm(set, pred, o);
      auto generated =
          GenerateCandidates(set, gm, pred, o, similarity, is_valid, stats);
      ASSERT_TRUE(generated.ok()) << generated.status();
    }
    EXPECT_EQ(first.similarity_cache_hits, second.similarity_cache_hits)
        << "grain=" << grain;
  }
}

TEST_F(CandidatesFixture, LambdaScalesThePotencyTerm) {
  options_.lambda = 1.0;
  auto candidates = Generate();
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_NEAR(candidates.effectiveness(1), 0.714 + 1.0, 1e-3);
}

TEST_F(CandidatesFixture, TargetIdIsAlwaysAMemberId) {
  auto candidates = Generate();
  for (size_t r = 0; r < candidates.size(); ++r) {
    bool found = false;
    for (TrajIndex m : candidates.members(r)) {
      found = found || set_.at(m).id() == candidates.target_id(r);
    }
    EXPECT_TRUE(found) << candidates.target_id(r);
  }
}

TEST_F(CandidatesFixture, RarityIsMinCoverDegreeOfInvalidMembers) {
  auto candidates = Generate();
  // Recompute degrees by hand.
  std::vector<uint32_t> degree(set_.size(), 0);
  for (size_t r = 0; r < candidates.size(); ++r) {
    for (TrajIndex t : candidates.invalid_members(r)) ++degree[t];
  }
  for (size_t r = 0; r < candidates.size(); ++r) {
    uint32_t expected = UINT32_MAX;
    for (TrajIndex t : candidates.invalid_members(r)) {
      expected = std::min(expected, degree[t]);
    }
    EXPECT_EQ(candidates.rarity(r), expected);
  }
}

}  // namespace
}  // namespace idrepair
