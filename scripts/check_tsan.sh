#!/usr/bin/env bash
# Builds the concurrency-sensitive targets with ThreadSanitizer and runs the
# tests that exercise the parallel execution engine. Any data race in the
# thread pool, task groups, sharded Gm construction, sharded candidate
# generation, the parallel selection phase, or parallel partitioned repair
# fails the script.
#
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -S . -B "$BUILD_DIR" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DIDREPAIR_SANITIZE=thread \
  >/dev/null

cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target exec_test partitioned_test stream_test stream_differential_test \
           candidates_test \
           selectors_parallel_test differential_test fuzz_test obs_test \
           fault_test chaos_test stats_json_test common_test sim_test \
           selectors_test graph_test scaling_test snapshot_test server_test \
           properties_test lig_test scenario_test

# scaling_test runs identity-only here: TSan's ~10x slowdown makes any
# wall-clock floor meaningless, but the 8-thread byte-identity check is
# exactly the schedule-dependent surface TSan should watch. server_test
# rides along because the daemon's acceptor/connection/shutdown threads are
# precisely the kind of surface TSan exists for. scenario_test runs the
# shrunk matrix (IDREPAIR_SCENARIO_LIGHT) to keep the city-scale engine
# sweep affordable under instrumentation.
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
IDREPAIR_SCALING_SKIP_TIMING=1 \
IDREPAIR_SCENARIO_LIGHT=1 \
  ctest --test-dir "$BUILD_DIR" \
  -R 'exec_test|partitioned_test|stream_test|stream_differential_test|candidates_test|selectors_parallel_test|differential_test|fuzz_test|obs_test|fault_test|chaos_test|stats_json_test|common_test|sim_test|selectors_test|graph_test|scaling_test|snapshot_test|server_test|properties_test|lig_test|scenario_test' \
  --output-on-failure

echo "check_tsan: OK"
