#!/usr/bin/env python3
"""Splices measured benchmark sections from bench_output.txt into
EXPERIMENTS.md (replacing the MEASURED_* placeholders). Idempotent only on
a template containing the placeholders; keep a template copy if you plan to
re-run."""

import re
import sys

REPO = sys.argv[1] if len(sys.argv) > 1 else "."

out = open(f"{REPO}/bench_output.txt").read()


def section(title_substr, count=1):
    """Returns the bench output section(s) whose === title contains the
    substring, as one fenced block."""
    blocks = []
    parts = re.split(r"\n(?==== )", out)
    for part in parts:
        if part.startswith("=== ") and title_substr in part.splitlines()[0]:
            blocks.append(part.rstrip())
            if len(blocks) == count:
                break
    assert blocks, f"section not found: {title_substr}"
    return "```\n" + "\n\n".join(blocks) + "\n```"


def sections(prefix, howmany):
    blocks = []
    for part in re.split(r"\n(?==== )", out):
        if part.startswith("=== ") and prefix in part.splitlines()[0]:
            blocks.append(part.rstrip())
    assert len(blocks) >= howmany, f"{prefix}: found {len(blocks)}"
    return "```\n" + "\n\n".join(blocks[:howmany]) + "\n```"


exp = open(f"{REPO}/EXPERIMENTS.md").read()

replacements = {
    "MEASURED_FIG10": sections("Fig 10", 4),
    "MEASURED_FIG11": sections("Fig 11", 2),
    "MEASURED_FIG12": section("Fig 12"),
    "MEASURED_FIG13": section("Fig 13"),
    "MEASURED_FIG14": sections("Fig 14", 2),
    "MEASURED_FIG15": section("Fig 15"),
    "MEASURED_FIG16": section("Fig 16"),
    "MEASURED_ABLATION": sections("Ablation", 3),
    "MEASURED_EXT_STREAM": sections("Streaming:", 2),
    "MEASURED_EXT_PART": section("Partitioned repair"),
}

for key, value in replacements.items():
    assert key in exp, f"placeholder missing: {key}"
    exp = exp.replace(key, value)

# EMAX averages line from the fig15 output.
m = re.search(r"EMAX averages: dE/dEmax = ([0-9.]+), dA/dAopt = ([0-9.]+)",
              out)
assert m, "EMAX averages not found"
exp = exp.replace("MEASURED_EMAX_RATIOS",
                  f"{m.group(1)} on ΔE/ΔEmax and {m.group(2)} on ΔA/ΔAopt")

open(f"{REPO}/EXPERIMENTS.md", "w").write(exp)
print("EXPERIMENTS.md updated")
