#!/usr/bin/env bash
# Full local CI gate: the tier-1 build + test suite, then the sanitizer
# sweeps (ASan with leak detection, then TSan). Stops at the first failing
# stage so the earliest, cheapest signal is the one reported.
#
# Usage: scripts/ci.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "==> tier-1: configure + build"
cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "==> tier-1: ctest"
ctest --test-dir "$BUILD_DIR" --output-on-failure

echo "==> bench-smoke: storage-layer memory gate"
BENCH_JSON_DIR="$BUILD_DIR/bench-json"
mkdir -p "$BENCH_JSON_DIR"
IDREPAIR_BENCH_JSON_DIR="$BENCH_JSON_DIR" "$BUILD_DIR/bench/bench_storage_memory"
# Compare the run's memory block against the committed baseline: any gate
# metric more than 10% above its baseline value fails CI. Lower is always
# better for these, so improvements pass and tighten nothing.
python3 - "$BENCH_JSON_DIR/BENCH_storage_memory.json" \
    bench/baselines/BENCH_storage_memory.json <<'EOF'
import json, sys
current = json.load(open(sys.argv[1]))["memory"]
baseline = json.load(open(sys.argv[2]))["memory"]
failed = False
for key, base in sorted(baseline.items()):
    now = current.get(key)
    if now is None:
        print(f"bench-smoke: FAIL missing metric {key}")
        failed = True
        continue
    limit = base * 1.10
    verdict = "FAIL" if now > limit else "ok"
    print(f"bench-smoke: {verdict} {key}: {now:.0f} vs baseline {base:.0f} "
          f"(limit {limit:.0f})")
    failed = failed or now > limit
sys.exit(1 if failed else 0)
EOF

echo "==> scenario: city-scale & adversarial workload matrix"
# The scenario tier (topology x traffic x error model through all five
# engines, metamorphic + quality oracles) ran inside tier-1; re-run it by
# name so a scenario regression reports as its own stage, then replay the
# scenario bench and hold its deterministic columns (vertices, records,
# erroneous, candidates, f_measure, set_dist) exactly to the committed
# BENCH_scenarios.json — those are pure functions of the catalog seeds, so
# any drift is a generator or repair-quality change that must be re-pinned
# deliberately. Timing columns are report-only.
ctest --test-dir "$BUILD_DIR" -R 'scenario_test' --output-on-failure
IDREPAIR_BENCH_JSON_DIR="$BENCH_JSON_DIR" "$BUILD_DIR/bench/bench_scenarios"
python3 - "$BENCH_JSON_DIR/BENCH_scenarios.json" BENCH_scenarios.json <<'EOF'
import json, sys
GATED = ["vertices", "records", "erroneous", "candidates", "f_measure",
         "set_dist"]
current = {r["scenario"]: r for t in json.load(open(sys.argv[1]))["tables"]
           for r in t["rows"]}
baseline = {r["scenario"]: r for t in json.load(open(sys.argv[2]))["tables"]
            for r in t["rows"]}
failed = False
for name, base in sorted(baseline.items()):
    now = current.get(name)
    if now is None:
        print(f"scenario: FAIL missing scenario {name}")
        failed = True
        continue
    bad = [c for c in GATED if now.get(c) != base.get(c)]
    for c in bad:
        print(f"scenario: FAIL {name}.{c}: {now.get(c)} vs committed "
              f"{base.get(c)}")
    if not bad:
        print(f"scenario: ok {name}")
    failed = failed or bool(bad)
sys.exit(1 if failed else 0)
EOF

echo "==> scaling: regression test + bench floor"
# The ctest half re-runs the scaling regression test on its own (byte
# identity always; wall-clock only when the machine can express it). The
# bench half replays the giant-component table and holds the 8-thread
# generation speedup to a floor scaled by the cores actually present:
# the full >=4x tentpole target on >=8 cores, cores/2 on smaller true
# multicores, and report-only below 4 cores. Override the computed floor
# with IDREPAIR_SCALING_BENCH_FLOOR (e.g. on a contended shared runner).
ctest --test-dir "$BUILD_DIR" -R 'scaling_test' --output-on-failure
IDREPAIR_BENCH_JSON_DIR="$BENCH_JSON_DIR" "$BUILD_DIR/bench/bench_ext_partitioned"
python3 - "$BENCH_JSON_DIR/BENCH_ext_partitioned.json" <<'EOF'
import json, os, sys
report = json.load(open(sys.argv[1]))
table = next(t for t in report["tables"]
             if t["title"].startswith("Single giant chain component"))
gen_ms = {row["threads"]: float(row["gen_ms"]) for row in table["rows"]}
speedup = gen_ms[1] / max(gen_ms[8], 1e-9)
cores = os.cpu_count() or 1
env_floor = os.environ.get("IDREPAIR_SCALING_BENCH_FLOOR")
if env_floor is not None:
    floor = float(env_floor)
elif cores >= 8:
    floor = 4.0
elif cores >= 4:
    floor = cores / 2.0
else:
    floor = None  # too few cores for any meaningful wall-clock gate
if floor is None:
    print(f"scaling: report-only ({cores} cores): 8-thread generation "
          f"speedup {speedup:.2f}x")
    sys.exit(0)
verdict = "ok" if speedup >= floor else "FAIL"
print(f"scaling: {verdict} 8-thread generation speedup {speedup:.2f}x "
      f"(floor {floor:.2f}x on {cores} cores)")
sys.exit(0 if speedup >= floor else 1)
EOF

echo "==> server: daemon e2e + snapshot kill-restart arm"
# The idrepaird end-to-end suite (register -> snapshot -> kill -> restart
# --load-dir -> byte-identical repair, admission shedding, wire garbage)
# plus the daemon kill-restart chaos arm. Both binaries were built by the
# tier-1 stage; this re-runs them by name so a server regression is
# reported as its own stage, not buried in the tier-1 wall of green.
ctest --test-dir "$BUILD_DIR" -R 'server_test|snapshot_test' --output-on-failure
"$BUILD_DIR/tests/chaos_test" \
  --gtest_filter='ChaosTest.DaemonKillRestartFromSnapshotIsByteIdentical'

echo "==> stream: incremental batch-equivalence differential tier"
# The streaming engine's per-window repairs must be byte-identical to the
# batch pipeline (tentpole invariant of the incremental rewrite), with the
# eviction-pattern fuzz/chaos arms alongside. Built by tier-1; re-run by
# name so a streaming regression reports as its own stage.
ctest --test-dir "$BUILD_DIR" -R 'stream_test|stream_differential_test' \
  --output-on-failure
"$BUILD_DIR/tests/chaos_test" \
  --gtest_filter='ChaosTest.SoakEvictionHeavyStreaming'

echo "==> sanitizer: address"
scripts/check_asan.sh

echo "==> sanitizer: thread"
scripts/check_tsan.sh

# Short seeded chaos stage under both sanitizers: the fault-injection
# matrix (chaos_test) at the thread counts the engines branch on. The
# sanitizer builds above already compiled chaos_test; this re-runs it with
# rotated seeds so CI doesn't always test the same fault schedule. The
# overnight version of this sweep is scripts/soak.sh.
echo "==> chaos: seeded fault-injection sweep (asan + tsan)"
CHAOS_SEED="$(date +%j)"  # rotate daily, stay reproducible within a day
for dir in build-asan build-tsan; do
  IDREPAIR_CHAOS_SEED_BASE="$CHAOS_SEED" IDREPAIR_CHAOS_ROUNDS=2 \
    ctest --test-dir "$dir" -R 'chaos_test' --output-on-failure
done

echo "ci: OK"
