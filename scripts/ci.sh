#!/usr/bin/env bash
# Full local CI gate: the tier-1 build + test suite, then the sanitizer
# sweeps (ASan with leak detection, then TSan). Stops at the first failing
# stage so the earliest, cheapest signal is the one reported.
#
# Usage: scripts/ci.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "==> tier-1: configure + build"
cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "==> tier-1: ctest"
ctest --test-dir "$BUILD_DIR" --output-on-failure

echo "==> sanitizer: address"
scripts/check_asan.sh

echo "==> sanitizer: thread"
scripts/check_tsan.sh

echo "ci: OK"
