#!/usr/bin/env bash
# Builds the repair pipeline with AddressSanitizer (or UBSan) and runs the
# tests that push the most data through it — the parallel execution engine,
# sharded candidate generation, the cross-engine differential suite, and the
# chaos fuzzers. Any heap error (or UB with `undefined`) fails the script.
#
# Usage: scripts/check_asan.sh [build-dir] [sanitizer]
#   build-dir  default: build-asan
#   sanitizer  address (default) or undefined — passed to IDREPAIR_SANITIZE
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"
SANITIZER="${2:-address}"

case "$SANITIZER" in
  address|undefined) ;;
  *)
    echo "check_asan: unknown sanitizer '$SANITIZER' (want address|undefined)" >&2
    exit 2
    ;;
esac

cmake -S . -B "$BUILD_DIR" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DIDREPAIR_SANITIZE="$SANITIZER" \
  >/dev/null

cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target exec_test partitioned_test stream_test stream_differential_test \
           candidates_test \
           selectors_parallel_test differential_test fuzz_test obs_test \
           fault_test chaos_test stats_json_test common_test sim_test \
           selectors_test graph_test scaling_test snapshot_test server_test \
           properties_test lig_test scenario_test

# scaling_test runs identity-only here: sanitizer instrumentation distorts
# wall-clock far past any meaningful speedup floor. scenario_test runs the
# shrunk matrix (IDREPAIR_SCENARIO_LIGHT) for the same reason.
ASAN_OPTIONS="halt_on_error=1 detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
IDREPAIR_SCALING_SKIP_TIMING=1 \
IDREPAIR_SCENARIO_LIGHT=1 \
  ctest --test-dir "$BUILD_DIR" \
  -R 'exec_test|partitioned_test|stream_test|stream_differential_test|candidates_test|selectors_parallel_test|differential_test|fuzz_test|obs_test|fault_test|chaos_test|stats_json_test|common_test|sim_test|selectors_test|graph_test|scaling_test|snapshot_test|server_test|properties_test|lig_test|scenario_test' \
  --output-on-failure

echo "check_asan ($SANITIZER): OK"
