#!/usr/bin/env bash
# Nightly chaos soak: long seeded fault-injection sweeps under ASan and
# TSan. Reuses the chaos_test matrix (all five engines × fault ×
# thread-count × graph-shape) and stretches it through the environment:
# each round arms a fresh seeded fault schedule, so N rounds explore N
# distinct interleavings of errors, simulated alloc failures, delays and
# cancellations — every one of which must either degrade gracefully or
# propagate cleanly, byte-identically reproducible from its seed.
#
# Usage: scripts/soak.sh [rounds] [seed-base]
#   rounds     chaos rounds per sanitizer (default 50; a round is ~5 s)
#   seed-base  first seed (default: day of year, so nightly runs rotate
#              but any run can be reproduced by passing its seed back)
#
# Intended as the nightly CI entry point; scripts/ci.sh runs the short
# (2-round) version of the same sweep on every gate.
set -euo pipefail

cd "$(dirname "$0")/.."
ROUNDS="${1:-50}"
SEED_BASE="${2:-$(date +%j)}"

echo "soak: $ROUNDS rounds per sanitizer, seeds $SEED_BASE..$((SEED_BASE + ROUNDS - 1))"

run_sweep() {
  local build_dir="$1" sanitize="$2"
  shift 2
  cmake -S . -B "$build_dir" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DIDREPAIR_SANITIZE="$sanitize" \
    >/dev/null
  cmake --build "$build_dir" -j "$(nproc)" \
    --target chaos_test fault_test stats_json_test
  IDREPAIR_CHAOS_SEED_BASE="$SEED_BASE" IDREPAIR_CHAOS_ROUNDS="$ROUNDS" \
    "$@" ctest --test-dir "$build_dir" \
    -R 'chaos_test|fault_test|stats_json_test' --output-on-failure
}

echo "==> soak: address sanitizer"
run_sweep build-asan address \
  env ASAN_OPTIONS="halt_on_error=1 detect_leaks=1"

echo "==> soak: thread sanitizer"
run_sweep build-tsan thread \
  env TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"

echo "soak: OK ($ROUNDS rounds x 2 sanitizers, seed base $SEED_BASE)"
