// Composite IDs: repairing camouflaged identities.
//
// §1 of the paper notes an ID "may be an atomic value or a composite one
// consisting of multiple features, such as name, color and shape", and
// §2.2.1 observes that camouflage usually fakes the *name* while the other
// features stay recognizable. This example tracks ships whose composite ID
// is name|color|type: a fraction of sightings carry a *completely faked
// name* (not a small typo). A naive tracker that matches on the name field
// alone loses those ships; scoring the full composite ID — with extra
// weight on the hard-to-conceal color/type features — recovers them.

#include <iostream>

#include "common/rng.h"
#include "common/string_util.h"
#include "eval/metrics.h"
#include "gen/dataset.h"
#include "gen/id_generator.h"
#include "gen/travel_time.h"
#include "graph/generators.h"
#include "graph/paths.h"
#include "repair/repairer.h"
#include "sim/composite_id.h"

using namespace idrepair;

namespace {

// Generates a labeled dataset with composite IDs. Each entity has a
// name|color|type identity; with probability `camouflage_rate` a sighting
// reports a random fake name (color/type intact).
Result<Dataset> GenerateCamouflageDataset(const TransitionGraph& graph,
                                          size_t num_entities,
                                          double camouflage_rate,
                                          uint64_t seed) {
  auto sampler = ValidPathSampler::Create(graph, 5);
  if (!sampler.ok()) return sampler.status();
  Rng rng(seed);
  UniqueIdGenerator names(6, 8);
  TravelTimeModel travel;
  const char* colors[] = {"red", "blue", "green", "white", "black"};
  const char* types[] = {"cargo", "tanker", "trawler", "ferry"};

  Dataset dataset;
  dataset.graph = graph;
  for (size_t e = 0; e < num_entities; ++e) {
    std::string name = names.Next(rng);
    std::string color = colors[rng.UniformIndex(5)];
    std::string type = types[rng.UniformIndex(4)];
    auto true_id = EncodeCompositeId({name, color, type});
    if (!true_id.ok()) return true_id.status();

    const auto& path = sampler->Sample(rng);
    Timestamp ts = rng.UniformInt(0, 6 * 3600);
    for (size_t i = 0; i < path.size(); ++i) {
      if (i > 0) ts += travel.SampleSeconds(path[i - 1], path[i], rng);
      std::string observed = *true_id;
      if (rng.Bernoulli(camouflage_rate)) {
        // A fake name shares nothing with the real one.
        auto fake = EncodeCompositeId({names.Next(rng), color, type});
        if (!fake.ok()) return fake.status();
        observed = *fake;
      }
      dataset.records.push_back(
          GroundTruthRecord{*true_id, observed, path[i], ts});
    }
  }
  return dataset;
}

}  // namespace

int main() {
  TransitionGraph graph = MakePaperExampleGraph();
  auto dataset = GenerateCamouflageDataset(graph, /*num_entities=*/300,
                                           /*camouflage_rate=*/0.18,
                                           /*seed=*/99);
  if (!dataset.ok()) {
    std::cerr << "generation failed: " << dataset.status() << "\n";
    return 1;
  }
  TrajectorySet set = dataset->BuildObservedTrajectories();
  auto truth = ComputeFragmentTruth(*dataset, set);
  std::cout << "Ships: " << dataset->NumEntities() << ", sightings: "
            << dataset->records.size() << ", camouflaged sightings: "
            << ToFixed(dataset->RecordErrorRate() * 100, 1) << "%\n\n";

  RepairOptions options;
  options.theta = 5;
  options.eta = 1200;

  // Attempt 1: the naive tracker — identity is the *name*; color and type
  // are ignored. A fake name shares nothing with the real one, so the
  // similarity term of Eq. (3) collapses for every camouflaged sighting.
  auto name_only = CompositeIdSimilarity::Create({1.0, 0.0, 0.0});
  if (!name_only.ok()) {
    std::cerr << name_only.status() << "\n";
    return 1;
  }
  options.similarity = &*name_only;
  IdRepairer plain(graph, options);
  auto plain_result = plain.Repair(set);
  if (!plain_result.ok()) {
    std::cerr << "repair failed: " << plain_result.status() << "\n";
    return 1;
  }
  auto plain_metrics = EvaluateRewrites(truth, set, plain_result->rewrites);

  // Attempt 2: composite similarity — name weight 1, color and type weight
  // 2 each (the hard-to-conceal features dominate).
  auto composite = CompositeIdSimilarity::Create({1.0, 2.0, 2.0});
  if (!composite.ok()) {
    std::cerr << composite.status() << "\n";
    return 1;
  }
  options.similarity = &*composite;
  IdRepairer smart(graph, options);
  auto smart_result = smart.Repair(set);
  if (!smart_result.ok()) {
    std::cerr << "repair failed: " << smart_result.status() << "\n";
    return 1;
  }
  auto smart_metrics = EvaluateRewrites(truth, set, smart_result->rewrites);

  std::cout << "name-only similarity:       precision="
            << ToFixed(plain_metrics.precision, 3)
            << " recall=" << ToFixed(plain_metrics.recall, 3)
            << " f-measure=" << ToFixed(plain_metrics.f_measure, 3) << "\n";
  std::cout << "weighted composite (1:2:2): precision="
            << ToFixed(smart_metrics.precision, 3)
            << " recall=" << ToFixed(smart_metrics.recall, 3)
            << " f-measure=" << ToFixed(smart_metrics.f_measure, 3) << "\n";

  if (smart_metrics.f_measure <= plain_metrics.f_measure) {
    std::cout << "\n(unexpected: composite similarity did not help)\n";
    return 1;
  }
  std::cout << "\nWeighting the hard-to-conceal features recovers "
               "camouflaged identities that name matching misses.\n";
  return 0;
}
