// Maritime surveillance: repairing ship identities along regulated routes.
//
// The paper's other motivating domain (§1): port surveillance devices track
// ships whose names are recognized from imagery, sometimes deliberately
// camouflaged (e.g. smuggling). Shipping lanes impose a transition graph
// just like a road network does. This example models a small coastal region
// with two inbound lanes converging on a customs anchorage, injects
// heavier, adversarial ID errors (camouflage = larger edit distances), and
// shows that rarity-weighted repair still recovers most identities.

#include <iostream>

#include "common/string_util.h"
#include "eval/metrics.h"
#include "gen/synthetic.h"
#include "graph/transition_graph.h"
#include "repair/repairer.h"

using namespace idrepair;

namespace {

// Shipping lanes: ships enter at the north or south approach, pass through
// lane buoys, converge on the customs anchorage and leave via the harbor.
//
//   north ──► buoy1 ──► merge ──► customs ──► harbor
//   south ──► buoy2 ──► merge
//                buoy2 ───────────► customs      (fast lane for small craft)
TransitionGraph MakeShippingLanes() {
  TransitionGraph g;
  LocationId north = g.AddLocation("north_approach");
  LocationId south = g.AddLocation("south_approach");
  LocationId buoy1 = g.AddLocation("buoy1");
  LocationId buoy2 = g.AddLocation("buoy2");
  LocationId merge = g.AddLocation("merge");
  LocationId customs = g.AddLocation("customs");
  LocationId harbor = g.AddLocation("harbor");
  (void)g.AddEdge(north, buoy1);
  (void)g.AddEdge(south, buoy2);
  (void)g.AddEdge(buoy1, merge);
  (void)g.AddEdge(buoy2, merge);
  (void)g.AddEdge(buoy2, customs);
  (void)g.AddEdge(merge, customs);
  (void)g.AddEdge(customs, harbor);
  (void)g.MarkEntrance(north);
  (void)g.MarkEntrance(south);
  (void)g.MarkExit(harbor);
  return g;
}

}  // namespace

int main() {
  TransitionGraph lanes = MakeShippingLanes();
  std::cout << "Shipping lanes: " << lanes.num_locations() << " stations, "
            << lanes.num_edges() << " legs\n";

  // Adversarial error model: camouflaged names drift further from the true
  // ID than OCR noise does (§1: "deliberate efforts ... to prevent the
  // entities from being recognized").
  SyntheticConfig config;
  config.num_trajectories = 400;
  config.record_error_rate = 0.25;
  config.max_path_len = 5;
  config.window_seconds = 6 * 3600;  // a six-hour tide window
  config.error_distances.probs_by_distance = {0.25, 0.35, 0.25, 0.15};
  config.seed = 1717;
  auto dataset = GenerateSyntheticDataset(lanes, config);
  if (!dataset.ok()) {
    std::cerr << "generation failed: " << dataset.status() << "\n";
    return 1;
  }
  TrajectorySet observed = dataset->BuildObservedTrajectories();
  std::cout << "Ships: " << dataset->NumEntities() << ", sightings: "
            << dataset->records.size() << ", observed trajectories: "
            << observed.size() << " ("
            << observed.InvalidTrajectories(lanes).size() << " invalid)\n\n";

  // Ships dwell longer than cars: wide η, and a full lane traversal holds
  // up to 5 sightings.
  RepairOptions options;
  options.theta = 5;
  options.eta = 3600;
  options.zeta = 4;
  options.lambda = 0.5;
  IdRepairer repairer(lanes, options);
  auto result = repairer.Repair(observed);
  if (!result.ok()) {
    std::cerr << "repair failed: " << result.status() << "\n";
    return 1;
  }

  auto truth = ComputeFragmentTruth(*dataset, observed);
  auto metrics = EvaluateRewrites(truth, observed, result->rewrites);
  std::cout << "Repairs selected: " << result->selected.size() << " (of "
            << result->candidates.size() << " candidates) in "
            << ToFixed(result->stats.seconds_total * 1e3, 1) << " ms\n";
  std::cout << "precision=" << ToFixed(metrics.precision, 3)
            << "  recall=" << ToFixed(metrics.recall, 3)
            << "  f-measure=" << ToFixed(metrics.f_measure, 3) << "\n";

  // Show a few concrete identity recoveries.
  std::cout << "\nSample identity recoveries:\n";
  int shown = 0;
  for (const auto& [traj, id] : result->rewrites) {
    if (truth[traj] != id) continue;  // show confirmed-correct ones
    std::cout << "  " << observed.at(traj).ToString(lanes) << "  ->  " << id
              << "\n";
    if (++shown == 5) break;
  }
  return 0;
}
