// Quickstart: the paper's running example, end to end.
//
// Builds the Figure 1(b) transition graph, loads the Table 1 tracking
// records, runs the two-phase repair, and prints every intermediate step —
// the trajectories of Table 2, the candidate repairs of Example 3.4 with
// their ω values (Figure 4(b)), and the final repaired trajectories of
// Example 1.4.

#include <iostream>

#include "graph/generators.h"
#include "repair/repairer.h"
#include "traj/trajectory_set.h"

using namespace idrepair;

int main() {
  // The road network of Figure 1: cameras at A..E, entrances {A, C},
  // exit {E}.
  TransitionGraph graph = MakePaperExampleGraph();
  std::cout << "Transition graph: " << graph.num_locations()
            << " locations, " << graph.num_edges() << " feasible moves\n\n";

  // Table 1: seven tracking records (id, loc, ts). One ID — GL03245 — was
  // misrecognized by the camera at C; the true plate is GL83248.
  auto hms = [](int h, int m, int s) {
    return static_cast<Timestamp>(h * 3600 + m * 60 + s);
  };
  std::vector<TrackingRecord> records = {
      {"GL21348", *graph.FindLocation("A"), hms(8, 9, 10)},
      {"GL21348", *graph.FindLocation("B"), hms(8, 13, 7)},
      {"GL03245", *graph.FindLocation("C"), hms(8, 17, 23)},
      {"GL21348", *graph.FindLocation("D"), hms(8, 19, 13)},
      {"GL83248", *graph.FindLocation("D"), hms(8, 19, 40)},
      {"GL21348", *graph.FindLocation("E"), hms(8, 21, 29)},
      {"GL83248", *graph.FindLocation("E"), hms(8, 21, 30)},
  };

  // Table 2: trajectories composed by grouping records on the observed ID.
  TrajectorySet set = TrajectorySet::FromRecords(records);
  std::cout << "Input trajectories (Table 2):\n";
  for (TrajIndex i = 0; i < set.size(); ++i) {
    std::cout << "  " << set.at(i).ToString(graph)
              << (set.at(i).IsValid(graph) ? "   [valid]" : "   [INVALID]")
              << "\n";
  }

  // Repair. θ=5 (valid paths hold up to five records on this graph),
  // η=1200 s, ζ=4, λ=0.5. rarity_base_offset=2 reproduces the exact ω
  // values printed in Figure 4(b) of the paper (see DESIGN.md §3).
  RepairOptions options;
  options.theta = 5;
  options.eta = 1200;
  options.zeta = 4;
  options.lambda = 0.5;
  options.rarity_base_offset = 2;

  IdRepairer repairer(graph, options);
  auto result = repairer.Repair(set);
  if (!result.ok()) {
    std::cerr << "repair failed: " << result.status() << "\n";
    return 1;
  }

  std::cout << "\nCandidate repairs (Example 3.4 / Figure 4(b)):\n";
  for (size_t r = 0; r < result->candidates.size(); ++r) {
    auto members = result->candidates.members(r);
    std::cout << "  target=" << result->candidates.target_id(r)
              << "  members={";
    for (size_t i = 0; i < members.size(); ++i) {
      std::cout << (i ? ", " : "") << set.at(members[i]).id();
    }
    std::cout << "}  sim=" << result->candidates.similarity(r)
              << "  |ivt|=" << result->candidates.num_invalid(r)
              << "  omega=" << result->candidates.effectiveness(r) << "\n";
  }

  std::cout << "\nSelected repairs (EMAX): " << result->selected.size()
            << ", total omega = " << result->total_effectiveness << "\n";
  for (const auto& [traj, id] : result->rewrites) {
    std::cout << "  rewrite " << set.at(traj).id() << " -> " << id << "\n";
  }

  std::cout << "\nRepaired trajectories (Example 1.4):\n";
  for (const auto& t : result->repaired.trajectories()) {
    std::cout << "  " << t.ToString(graph)
              << (t.IsValid(graph) ? "   [valid]" : "   [INVALID]") << "\n";
  }
  return 0;
}
