// Traffic surveillance: repairing OCR'd license plates at city scale.
//
// The scenario of the paper's §1: cameras on a road network capture plates
// with ~83% field accuracy. This example generates a labeled city-traffic
// workload (the calibrated stand-in for the paper's real dataset), runs the
// repair pipeline with the real-dataset defaults (θ=4, η=600 s, ζ=4, λ=0.5),
// and scores it against ground truth — then shows how to persist the
// repaired records back to CSV for a downstream consumer.

#include <iostream>
#include <sstream>

#include "common/string_util.h"
#include "eval/metrics.h"
#include "gen/real_like.h"
#include "repair/repairer.h"
#include "traj/csv.h"

using namespace idrepair;

int main() {
  // A labeled dataset shaped like the paper's: 699 vehicles, ~2,045 records
  // between 8 and 9 a.m., 17% of plates misread.
  auto dataset = MakeRealLikeDataset(/*seed=*/2018);
  if (!dataset.ok()) {
    std::cerr << "generation failed: " << dataset.status() << "\n";
    return 1;
  }
  TrajectorySet observed = dataset->BuildObservedTrajectories();
  std::cout << "Vehicles (true entities):   " << dataset->NumEntities()
            << "\nTracking records:           " << dataset->records.size()
            << "\nObserved trajectories:      " << observed.size()
            << "\nRecord-level error rate:    "
            << ToFixed(dataset->RecordErrorRate() * 100, 1) << "%\n";
  size_t invalid = observed.InvalidTrajectories(dataset->graph).size();
  std::cout << "Invalid trajectories (IVT): " << invalid << "\n\n";

  // Repair with the paper's real-dataset defaults.
  RepairOptions options;
  options.theta = 4;
  options.eta = 600;
  options.zeta = 4;
  options.lambda = 0.5;
  IdRepairer repairer(dataset->graph, options);
  auto result = repairer.Repair(observed);
  if (!result.ok()) {
    std::cerr << "repair failed: " << result.status() << "\n";
    return 1;
  }

  const RepairStats& stats = result->stats;
  std::cout << "Pipeline: " << stats.gm_edges << " Gm edges, "
            << stats.num_candidates << " candidate repairs, "
            << stats.num_selected << " selected, in "
            << ToFixed(stats.seconds_total * 1e3, 1) << " ms\n";

  // Score against the manual labels.
  auto truth = ComputeFragmentTruth(*dataset, observed);
  auto metrics = EvaluateRewrites(truth, observed, result->rewrites);
  std::cout << "Erroneous trajectories: " << metrics.num_erroneous
            << ", rewritten: " << metrics.num_rewritten
            << ", correct: " << metrics.num_correct << "\n";
  std::cout << "precision=" << ToFixed(metrics.precision, 3)
            << "  recall=" << ToFixed(metrics.recall, 3)
            << "  f-measure=" << ToFixed(metrics.f_measure, 3) << "\n";
  std::cout << "Trajectory accuracy: "
            << ToFixed(TrajectoryAccuracy(truth, observed, {}), 3) << " -> "
            << ToFixed(TrajectoryAccuracy(truth, observed, result->rewrites),
                       3)
            << "\n";
  size_t invalid_after =
      result->repaired.InvalidTrajectories(dataset->graph).size();
  std::cout << "Invalid trajectories: " << invalid << " -> " << invalid_after
            << "\n\n";

  // Persist the repaired records (here to a string; point it at a file in
  // production).
  std::vector<TrackingRecord> repaired_records;
  for (const auto& t : result->repaired.trajectories()) {
    for (const auto& p : t.points()) {
      repaired_records.push_back(TrackingRecord{t.id(), p.loc, p.ts});
    }
  }
  std::ostringstream csv;
  if (auto s = WriteRecordsCsv(csv, dataset->graph, repaired_records);
      !s.ok()) {
    std::cerr << "csv write failed: " << s << "\n";
    return 1;
  }
  std::cout << "Repaired CSV: " << repaired_records.size()
            << " records, " << csv.str().size() << " bytes (first line: "
            << csv.str().substr(0, csv.str().find('\n')) << ")\n";
  return 0;
}
