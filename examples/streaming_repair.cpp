// Streaming repair: fixing IDs as tracking records arrive.
//
// The paper's §8 names online repair as future work; this example drives
// the library's StreamingRepairer extension. Records from a day of traffic
// are replayed in timestamp order; the stream is polled periodically, and
// trajectories are emitted as soon as the η bound proves no future record
// can still join them. Results are compared against a batch run of the
// same data.

#include <iostream>

#include "common/string_util.h"
#include "eval/metrics.h"
#include "gen/real_like.h"
#include "repair/repairer.h"
#include "stream/streaming_repairer.h"

using namespace idrepair;

int main() {
  auto dataset = MakeScaledRealLikeDataset(/*num_trajectories=*/1500,
                                           /*record_error_rate=*/0.2,
                                           /*seed=*/7);
  if (!dataset.ok()) {
    std::cerr << "generation failed: " << dataset.status() << "\n";
    return 1;
  }
  auto records = dataset->ObservedRecords();
  std::sort(records.begin(), records.end(), RecordChronoLess);
  std::cout << "Replaying " << records.size() << " records spanning "
            << (records.back().ts - records.front().ts) << " s\n\n";

  RepairOptions options;
  options.theta = 4;
  options.eta = 600;

  StreamingRepairer stream(dataset->graph, options,
                           /*flush_horizon_multiplier=*/3.0);
  std::vector<Trajectory> emitted;
  size_t polls = 0;
  size_t max_pending = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    if (auto s = stream.Append(records[i]); !s.ok()) {
      std::cerr << "append failed: " << s << "\n";
      return 1;
    }
    max_pending = std::max(max_pending, stream.pending_records());
    if ((i + 1) % 200 == 0) {  // poll every 200 records
      ++polls;
      auto batch = stream.Poll();
      emitted.insert(emitted.end(), batch.begin(), batch.end());
    }
  }
  auto rest = stream.Finish();
  emitted.insert(emitted.end(), rest.begin(), rest.end());

  std::cout << "Polls: " << polls << ", emitted trajectories: "
            << emitted.size() << ", peak buffered records: " << max_pending
            << "\n";

  // Batch reference on the same data.
  TrajectorySet set = dataset->BuildObservedTrajectories();
  IdRepairer repairer(dataset->graph, options);
  auto batch = repairer.Repair(set);
  if (!batch.ok()) {
    std::cerr << "batch repair failed: " << batch.status() << "\n";
    return 1;
  }

  size_t stream_valid = 0;
  for (const auto& t : emitted) {
    if (t.IsValid(dataset->graph)) ++stream_valid;
  }
  size_t batch_valid = batch->repaired.size() -
                       batch->repaired.InvalidTrajectories(dataset->graph)
                           .size();
  std::cout << "Valid trajectories  — stream: " << stream_valid << " / "
            << emitted.size() << ", batch: " << batch_valid << " / "
            << batch->repaired.size() << "\n";
  std::cout << "Batch f-measure for reference: ";
  auto truth = ComputeFragmentTruth(*dataset, set);
  auto metrics = EvaluateRewrites(truth, set, batch->rewrites);
  std::cout << ToFixed(metrics.f_measure, 3) << "\n";
  return 0;
}
